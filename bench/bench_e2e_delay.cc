// Reproduces §2.4 / Corollary 1: end-to-end delay guarantees across a tandem
// of SFQ servers, including a mixed FC + EBF path and the leaky-bucket source
// bound of Appendix A.5.
//
// Expected shape: every delivered packet's delay past EAT^1 stays within the
// composed deterministic theta on the all-FC path; the A.5 absolute delay
// bound holds for the shaped flow; on the mixed FC/EBF path, excess beyond
// theta is rare and its frequency is bounded by the composed violation
// probability.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "net/network.h"
#include "net/rate_profile.h"
#include "qos/eat.h"
#include "qos/end_to_end.h"
#include "sim/simulator.h"
#include "stats/time_series.h"
#include "traffic/leaky_bucket.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

constexpr double kC = 1e6;
constexpr double kDelta = 5e4;
constexpr double kLen = 1000.0;
constexpr Time kProp = 0.002;
constexpr int kHops = 4;
// Three flows sharing every hop; the tagged flow is leaky-bucket shaped.
constexpr double kRates[3] = {0.3 * kC, 0.3 * kC, 0.4 * kC};
constexpr double kSigma = 8.0 * kLen;

struct Result {
  Time worst_past_eat1 = -kTimeInfinity;   // max over packets of L - EAT^1
  Time worst_delay = 0.0;                  // max absolute e2e delay (tagged)
  std::vector<Time> past_eat1;             // all samples (tagged flow)
};

Result run(bool last_hop_ebf, Time duration, uint64_t seed) {
  sim::Simulator sim;
  std::vector<net::TandemNetwork::Hop> hops;
  for (int i = 0; i < kHops; ++i) {
    net::TandemNetwork::Hop h;
    h.scheduler = std::make_unique<SfqScheduler>();
    if (last_hop_ebf && i == kHops - 1) {
      net::EbfRandomRate::Params ep;
      ep.average = kC;
      ep.on_rate = 2.5e6;
      ep.mean_pause = 0.002;
      ep.mean_run = 0.003;
      ep.seed = seed + 99;
      h.profile = std::make_unique<net::EbfRandomRate>(ep);
    } else {
      h.profile = std::make_unique<net::FcOnOffRate>(kC, kDelta, 0.5,
                                                     0.01 * i);
    }
    h.propagation_to_next = i + 1 < kHops ? kProp : 0.0;
    hops.push_back(std::move(h));
  }
  net::TandemNetwork net(sim, std::move(hops));
  std::vector<FlowId> ids;
  for (double r : kRates) ids.push_back(net.add_flow(r, kLen));

  Result out;
  std::vector<Time> eat1;  // EAT at the first server, tagged flow
  net.set_delivery([&](const Packet& p, Time t) {
    if (p.flow != ids[0]) return;
    const Time past = t - eat1[p.seq - 1];
    out.worst_past_eat1 = std::max(out.worst_past_eat1, past);
    out.worst_delay = std::max(out.worst_delay, t - p.source_departure);
    out.past_eat1.push_back(past);
  });

  qos::EatTracker eat;
  // Tagged flow: on-off bursts through a (sigma, rho) leaky bucket. The A.5
  // bound covers delay from the *first server's arrival* (the shaper output),
  // so source_departure is stamped as the packet leaves the bucket.
  auto shaped_in = std::make_unique<traffic::LeakyBucketShaper>(
      sim, kSigma, kRates[0], [&](Packet p) {
        p.source_departure = sim.now();
        eat1.push_back(eat.on_arrival(sim.now(), p.length_bits, kRates[0]));
        net.inject(std::move(p));
      });
  traffic::OnOffSource tagged(
      sim, ids[0],
      [&, lb = shaped_in.get()](Packet p) { lb->inject(std::move(p)); },
      3.0 * kRates[0], kLen, 0.02, 0.04, seed + 1);
  tagged.run(0.0, duration);

  // Cross traffic.
  auto emit = [&](Packet p) { net.inject(std::move(p)); };
  traffic::PoissonSource x1(sim, ids[1], emit, kRates[1] * 0.9, kLen, seed + 2);
  traffic::OnOffSource x2(sim, ids[2], emit, 2.0 * kRates[2], kLen, 0.03, 0.04,
                          seed + 3);
  x1.run(0.0, duration);
  x2.run(0.0, duration);

  sim.run_until(duration);
  sim.run();
  return out;
}

}  // namespace

int main() {
  using namespace sfq;
  bench::print_header(
      "Corollary 1 — end-to-end delay over a 4-hop SFQ tandem",
      "SFQ paper §2.4 + Appendix A.5",
      "delay past EAT^1 <= composed theta on the FC path; A.5 leaky-bucket "
      "bound holds; rare, bounded excess with an EBF hop");

  // Composed guarantee.
  const double sum_other = 2.0 * kLen;
  std::vector<qos::HopGuarantee> fc_hops;
  for (int i = 0; i < kHops; ++i)
    fc_hops.push_back(qos::sfq_fc_hop({kC, kDelta}, sum_other, kLen,
                                      i + 1 < kHops ? kProp : 0.0));
  const auto g_fc = qos::compose(fc_hops);

  const auto r_fc = run(/*last_hop_ebf=*/false, 30.0, 1);
  std::printf("\nall-FC path (%zu tagged packets):\n", r_fc.past_eat1.size());
  std::printf("  worst delay past EAT^1 : %.3f ms (theta = %.3f ms)\n",
              to_milliseconds(r_fc.worst_past_eat1),
              to_milliseconds(g_fc.theta));
  const Time a5 = qos::leaky_bucket_e2e_delay_bound(g_fc, kSigma, kRates[0],
                                                    kLen);
  std::printf("  worst absolute delay   : %.3f ms (A.5 bound = %.3f ms)\n",
              to_milliseconds(r_fc.worst_delay), to_milliseconds(a5));
  const bool fc_ok =
      r_fc.worst_past_eat1 <= g_fc.theta + 1e-9 && r_fc.worst_delay <= a5 + 1e-9;

  // Mixed path with an EBF final hop.
  std::vector<qos::HopGuarantee> mixed = fc_hops;
  mixed.back() = qos::sfq_ebf_hop({kC, 1.0, 5e-5, 0.0}, sum_other, kLen, 0.0);
  const auto g_mixed = qos::compose(mixed);
  const auto r_mixed = run(/*last_hop_ebf=*/true, 30.0, 2);
  int excess = 0;
  for (Time p : r_mixed.past_eat1)
    if (p > g_mixed.theta) ++excess;
  const double freq =
      static_cast<double>(excess) /
      std::max<std::size_t>(r_mixed.past_eat1.size(), 1);
  std::printf("\nFC+EBF path: P(delay past EAT^1 > theta) = %.4f "
              "(stochastic hop; bound B=%.1f decays with slack)\n",
              freq, g_mixed.b_sum);
  for (double gamma_ms : {2.0, 5.0, 10.0}) {
    int n = 0;
    for (Time p : r_mixed.past_eat1)
      if (p > g_mixed.theta + milliseconds(gamma_ms)) ++n;
    std::printf("  gamma=%4.1f ms: measured %.4f, Corollary-1 bound %.4f\n",
                gamma_ms,
                static_cast<double>(n) / r_mixed.past_eat1.size(),
                std::min(1.0, g_mixed.violation_prob(milliseconds(gamma_ms))));
  }

  std::printf("\nshape check: deterministic path within theta and A.5: %s\n",
              fc_ok ? "yes" : "NO");
  return fc_ok ? 0 : 1;
}
