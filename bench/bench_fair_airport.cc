// Reproduces Appendix B (Theorems 8 & 9): Fair Airport scheduling combines
// WFQ's delay guarantee with fairness on variable-rate servers.
//
// Expected shape: (1) FA's worst packet overhang past EAT stays within the
// WFQ-style bound l/r + l_max/C while plain SFQ's low-rate flows exceed it;
// (2) on a variable-rate server FA's empirical fairness stays within the
// Theorem-8 bound, while Virtual Clock (its GSQ alone) blows up.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "sched/fair_airport.h"
#include "sched/virtual_clock.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

constexpr double kC = 1e6;
constexpr double kLen = 1000.0;

// Delay scenario: one low-rate flow among heavy competitors, burst aligned.
Time worst_overhang(Scheduler& sched, double low_rate, int n_others) {
  sim::Simulator sim;
  const double other = (kC - low_rate) / n_others;
  FlowId tagged = sched.add_flow(low_rate, kLen, "tagged");
  for (int i = 0; i < n_others; ++i) sched.add_flow(other, kLen);

  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(kC));
  Time worst = -kTimeInfinity;
  std::vector<Time> eats;
  server.set_departure([&](const Packet& p, Time t) {
    if (p.flow == tagged) worst = std::max(worst, t - eats[p.seq - 1]);
  });
  qos::EatTracker eat;
  auto emit_tag = [&](Packet p) {
    eats.push_back(eat.on_arrival(sim.now(), p.length_bits, low_rate));
    server.inject(std::move(p));
  };
  auto emit = [&](Packet p) { server.inject(std::move(p)); };

  std::vector<std::unique_ptr<traffic::Source>> src;
  for (int i = 0; i < n_others; ++i) {
    src.push_back(std::make_unique<traffic::CbrSource>(
        sim, static_cast<FlowId>(tagged + 1 + i), emit, 1.5 * other, kLen));
    src.back()->run(0.0, 10.0);
  }
  traffic::CbrSource tag(sim, tagged, emit_tag, low_rate, kLen);
  tag.run(0.0, 10.0);
  sim.run_until(10.0);
  sim.run();
  return worst;
}

// Fairness scenario: two greedy flows on a fluctuating link; one idles first.
double variable_rate_fairness(Scheduler& sched) {
  sim::Simulator sim;
  const double w = kC / 2.0;
  FlowId a = sched.add_flow(w, kLen);
  FlowId b = sched.add_flow(w, kLen);
  net::ScheduledServer server(
      sim, sched, std::make_unique<net::FcOnOffRate>(kC, 2e5, 0.5));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource sa(sim, a, emit, kC, kLen);
  traffic::CbrSource sb(sim, b, emit, kC, kLen);
  sa.run(0.0, 20.0);
  sb.run(4.0, 20.0);  // b joins late, after a used the idle capacity
  sim.run_until(20.0);
  sim.run();
  rec.finish(sim.now());
  return stats::empirical_fairness(rec, a, w, b, w);
}

}  // namespace

int main() {
  using namespace sfq;
  bench::print_header(
      "Appendix B — Fair Airport: WFQ delay + fairness on variable links",
      "SFQ paper Appendix B (Theorems 8, 9)",
      "FA within the WFQ-style delay bound where SFQ is not; FA fair on the "
      "fluctuating link where Virtual Clock is not");

  const double low = 10e3;
  const int n_others = 9;
  const Time wfq_style_bound = kLen / low + kLen / kC;  // eq. 137
  const Time sfq_bound = qos::sfq_fc_delay_term({kC, 0.0}, n_others * kLen,
                                                kLen);

  FairAirportScheduler fa1;
  SfqScheduler sfq1;
  const Time d_fa = worst_overhang(fa1, low, n_others);
  const Time d_sfq = worst_overhang(sfq1, low, n_others);

  std::printf("\nlow-rate flow worst overhang past EAT:\n");
  stats::TablePrinter t({"scheduler", "overhang(ms)", "Thm9/WFQ bound(ms)",
                         "SFQ Thm4 bound(ms)"});
  t.row({"FairAirport", stats::TablePrinter::num(to_milliseconds(d_fa), 3),
         stats::TablePrinter::num(to_milliseconds(wfq_style_bound), 3), "-"});
  t.row({"SFQ", stats::TablePrinter::num(to_milliseconds(d_sfq), 3), "-",
         stats::TablePrinter::num(to_milliseconds(sfq_bound), 3)});

  FairAirportScheduler fa2;
  VirtualClockScheduler vc;
  const double h_fa = variable_rate_fairness(fa2);
  const double h_vc = variable_rate_fairness(vc);
  const double w = kC / 2.0;
  const double thm8 = 3.0 * (kLen / w + kLen / w) + 2.0 * kLen / kC;
  std::printf("\nfairness on the fluctuating link (late-joining flow):\n");
  stats::TablePrinter f({"scheduler", "H(s)", "Thm8 bound(s)", "fair"});
  f.row({"FairAirport", stats::TablePrinter::num(h_fa, 4),
         stats::TablePrinter::num(thm8, 4), h_fa <= thm8 ? "yes" : "NO"});
  f.row({"VirtualClock", stats::TablePrinter::num(h_vc, 4), "-",
         h_vc <= thm8 ? "yes" : "NO"});

  const bool ok = d_fa <= wfq_style_bound + 1e-9 && h_fa <= thm8 + 1e-9 &&
                  h_vc > thm8;
  std::printf("\nshape check: FA within Thm9 delay and Thm8 fairness while "
              "VC is unfair: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
