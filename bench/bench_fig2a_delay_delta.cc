// Reproduces Figure 2(a): the reduction in maximum delay under SFQ relative
// to WFQ (eq. 58) as a function of the number of flows and the flow rate,
// for 200-byte packets on a 100 Mb/s link — plus a simulated spot check.
//
// Expected shape: the reduction is large for low-throughput flows (tens of
// ms for 64 Kb/s) and goes negative once r_f/C > 1/(|Q|-1) (eq. 60).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "sched/wfq_scheduler.h"
#include "sim/simulator.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

// Measured worst-case delay of a tagged flow's packets past their EAT, for a
// scheduler on a C-link shared with q-1 competitors of equal aggregate rate.
Time measured_overhang(const std::string& sched_name, double capacity,
                       double flow_rate, std::size_t q, double len) {
  sim::Simulator sim;
  auto sched = bench::make_scheduler(sched_name, capacity);
  FlowId tagged = sched->add_flow(flow_rate, len, "tagged");
  const double other_rate = (capacity - flow_rate) / static_cast<double>(q - 1);
  std::vector<FlowId> others;
  for (std::size_t i = 1; i < q; ++i)
    others.push_back(sched->add_flow(other_rate, len));

  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(capacity));
  Time worst = 0.0;
  std::vector<Time> eats;  // EAT per tagged seq
  server.set_departure([&](const Packet& p, Time t) {
    if (p.flow == tagged) worst = std::max(worst, t - eats[p.seq - 1]);
  });

  qos::EatTracker eat;
  auto emit_tagged = [&](Packet p) {
    eats.push_back(eat.on_arrival(sim.now(), p.length_bits, flow_rate));
    server.inject(std::move(p));
  };
  auto emit_other = [&](Packet p) { server.inject(std::move(p)); };

  // Competitors slightly oversubscribe their share so they stay strictly
  // backlogged — the regime where WFQ's finish-tag order delays the low-rate
  // flow by ~l/r (knife-edge CBR would let the GPS fluid system drain and
  // mask the effect).
  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (std::size_t i = 0; i < others.size(); ++i) {
    sources.push_back(std::make_unique<traffic::CbrSource>(
        sim, others[i], emit_other, 1.25 * other_rate, len));
    sources.back()->run(0.0, 2.0);
  }
  traffic::CbrSource tagged_src(sim, tagged, emit_tagged, flow_rate, len);
  tagged_src.run(0.0, 2.0);
  sim.run_until(2.0);
  sim.run();
  return worst;
}

}  // namespace

int main() {
  sfq::bench::print_header(
      "Figure 2(a) — max-delay reduction of SFQ vs WFQ (eq. 58)",
      "SFQ paper §2.3, Figure 2(a)",
      "reduction grows as flow rate shrinks; crossover at r/C = 1/(|Q|-1)");

  const double c = megabits_per_sec(100);
  const double l = bytes(200);

  std::printf("\nanalytic Delta(p) in ms (positive = SFQ wins):\n");
  sfq::stats::TablePrinter table(
      {"flows|rate", "64Kb/s", "128Kb/s", "512Kb/s", "1Mb/s", "10Mb/s"});
  for (std::size_t q : {10u, 50u, 100u, 200u, 270u, 500u}) {
    std::vector<std::string> row = {std::to_string(q)};
    for (double r : {64e3, 128e3, 512e3, 1e6, 10e6}) {
      const double sum_other = static_cast<double>(q - 1) * l;
      row.push_back(sfq::stats::TablePrinter::num(
          to_milliseconds(qos::wfq_sfq_delay_delta(c, l, sum_other, l, r)), 3));
    }
    table.row(row);
  }

  std::printf("\ncrossover check (eq. 60): SFQ beats WFQ iff r/C <= 1/(|Q|-1)\n");
  for (std::size_t q : {10u, 100u, 500u}) {
    const double threshold = c / static_cast<double>(q - 1);
    std::printf("  |Q|=%-4zu -> threshold rate %.1f Kb/s\n", q,
                threshold / 1e3);
  }

  // Simulated spot check on a down-scaled system (same ratios, faster run):
  // C = 1 Mb/s, 20 flows, tagged flow at 10 Kb/s.
  const double cs = megabits_per_sec(1);
  const double rs = 10e3;
  const std::size_t qs = 20;
  const Time wfq_overhang = measured_overhang("WFQ", cs, rs, qs, l);
  const Time sfq_overhang = measured_overhang("SFQ", cs, rs, qs, l);
  std::printf(
      "\nsimulated worst overhang past EAT (C=1Mb/s, |Q|=20, r=10Kb/s):\n"
      "  WFQ %.3f ms   SFQ %.3f ms   measured reduction %.3f ms\n",
      to_milliseconds(wfq_overhang), to_milliseconds(sfq_overhang),
      to_milliseconds(wfq_overhang - sfq_overhang));

  const bool shape_ok = sfq_overhang < wfq_overhang;
  std::printf("shape check: SFQ's low-rate overhang smaller than WFQ's: %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
