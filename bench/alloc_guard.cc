#include "alloc_guard.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Relaxed is enough: the guard is armed/disarmed on the measuring thread and
// benchmarks under the guard are single-threaded; other threads only add
// noise that would (correctly) fail a zero-allocation assertion.
std::atomic<bool> g_armed{false};
std::atomic<uint64_t> g_count{0};

inline void note_alloc() {
  if (g_armed.load(std::memory_order_relaxed))
    g_count.fetch_add(1, std::memory_order_relaxed);
}

void* checked_malloc(std::size_t n) {
  note_alloc();
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* checked_aligned(std::size_t n, std::size_t align) {
  note_alloc();
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t padded = (n + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded ? padded : align)) return p;
  throw std::bad_alloc();
}

}  // namespace

namespace sfq::bench {

void alloc_guard_arm() {
  g_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
}

uint64_t alloc_guard_disarm() {
  g_armed.store(false, std::memory_order_relaxed);
  return g_count.load(std::memory_order_relaxed);
}

uint64_t alloc_guard_count() { return g_count.load(std::memory_order_relaxed); }

}  // namespace sfq::bench

// Global replacements. All allocation funnels through checked_malloc /
// checked_aligned; all deallocation through free, so new/delete pairs stay
// matched regardless of which overload the compiler picks.
void* operator new(std::size_t n) { return checked_malloc(n); }
void* operator new[](std::size_t n) { return checked_malloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return checked_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return checked_aligned(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
