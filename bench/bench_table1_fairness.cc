// Reproduces Table 1 of the paper: the fairness summary of WFQ, FQS, SCFQ,
// DRR, and SFQ, measured empirically.
//
// Columns:
//   worst-H      — worst empirical H(f,m) across adversarial + random
//                  backlogged workloads on a constant-rate server,
//   H-bound      — the SFQ/SCFQ analytical bound l_f/r_f + l_m/r_m,
//   x-lower      — worst-H divided by the universal lower bound
//                  (l_f/r_f + l_m/r_m)/2; "2.0" = optimal packet algorithm,
//   varH         — worst empirical H on a *variable-rate* (FC) server.
//
// Expected shape (paper Table 1):
//   WFQ/FQS reach >= 2x the lower bound on the adversarial workload (i.e.
//   worst-H ~ the full bound x2 away from optimum) and blow up on the
//   variable-rate server; SCFQ and SFQ stay within the bound everywhere;
//   DRR deviates arbitrarily (scales with its quantum).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/eat.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

constexpr double kWeight = 100.0;  // both flows, bits/s
constexpr double kLen = 100.0;     // l^max, bits
constexpr double kCap = 250.0;     // keeps both flows backlogged

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

// Example-1-style adversarial burst plus sustained greedy load.
double adversarial_h(const std::string& sched_name,
                     std::unique_ptr<net::RateProfile> profile,
                     double quantum_per_weight = 1.0) {
  sim::Simulator sim;
  auto sched = bench::make_scheduler(sched_name, kCap, quantum_per_weight);
  FlowId f = sched->add_flow(kWeight, kLen, "f");
  FlowId m = sched->add_flow(kWeight, kLen, "m");
  net::ScheduledServer server(sim, *sched, std::move(profile));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);

  // Example 1 pattern scaled: f sends 2 x l^max; m sends l^max + two halves
  // (second half a hair short to force the adversarial tie-break)...
  sim.at(0.0, [&] {
    server.inject(mk(f, 1, kLen));
    server.inject(mk(f, 2, kLen));
    server.inject(mk(m, 1, kLen));
    server.inject(mk(m, 2, kLen / 2));
    server.inject(mk(m, 3, kLen / 2 - 0.01));
  });
  // ...then both stay greedy so longer windows are exercised too.
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource sf(sim, f, emit, 2.0 * kWeight, kLen);
  traffic::CbrSource sm(sim, m, emit, 2.0 * kWeight, kLen / 2);
  sf.run(3.0, 20.0);
  sm.run(3.0, 20.0);
  sim.run_until(20.0);
  sim.run();
  rec.finish(sim.now());
  return stats::empirical_fairness(rec, f, kWeight, m, kWeight);
}

// Example-2-style variable-rate workload: one flow backlogs during a slow
// phase; the other joins when the link speeds up.
double variable_rate_h(const std::string& sched_name) {
  sim::Simulator sim;
  auto sched = bench::make_scheduler(sched_name, kCap, 1.0);
  FlowId f = sched->add_flow(kWeight, kLen, "f");
  FlowId m = sched->add_flow(kWeight, kLen, "m");
  auto profile = std::make_unique<net::PiecewiseConstantRate>(
      std::vector<net::PiecewiseConstantRate::Segment>{
          {0.0, kCap / 10.0}, {10.0, kCap}});
  net::ScheduledServer server(sim, *sched, std::move(profile));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);

  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource sf(sim, f, emit, 2.0 * kWeight, kLen);
  traffic::CbrSource sm(sim, m, emit, 2.0 * kWeight, kLen);
  sf.run(0.0, 30.0);
  sm.run(10.0, 30.0);
  sim.run_until(30.0);
  sim.run();
  rec.finish(sim.now());
  return stats::empirical_fairness(rec, f, kWeight, m, kWeight);
}

// Worst EAT-overhang of a 10 Kb/s flow among 9 oversubscribed heavy flows on
// a 1 Mb/s link (Table 1's delay comparison, measured).
double low_rate_overhang(const std::string& sched_name) {
  const double C = 1e6, low = 10e3, len = 1600.0;
  const int n_others = 9;
  const double other = (C - low) / n_others;

  sim::Simulator sim;
  auto sched = bench::make_scheduler(sched_name, C, /*quantum=*/len / other);
  FlowId tagged = sched->add_flow(low, len, "tagged");
  for (int i = 0; i < n_others; ++i) sched->add_flow(other, len);
  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(C));

  Time worst = 0.0;
  std::vector<Time> eats;
  qos::EatTracker eat;
  server.set_departure([&](const Packet& p, Time t) {
    if (p.flow == tagged && t - eats[p.seq - 1] > worst)
      worst = t - eats[p.seq - 1];
  });
  auto emit_tag = [&](Packet p) {
    eats.push_back(eat.on_arrival(sim.now(), p.length_bits, low));
    server.inject(std::move(p));
  };
  auto emit = [&](Packet p) { server.inject(std::move(p)); };

  std::vector<std::unique_ptr<traffic::Source>> src;
  for (int i = 0; i < n_others; ++i) {
    src.push_back(std::make_unique<traffic::CbrSource>(
        sim, static_cast<FlowId>(1 + i), emit, 1.25 * other, len));
    src.back()->run(0.0, 4.0);
  }
  traffic::CbrSource tag(sim, tagged, emit_tag, low, len);
  tag.run(0.0, 4.0);
  sim.run_until(4.0);
  sim.run();
  return worst;
}

}  // namespace

int main() {
  sfq::bench::print_header(
      "Table 1 — fairness of scheduling algorithms (empirical)",
      "Goyal/Vin/Cheng SFQ paper, Table 1 + Examples 1 & 2",
      "WFQ/FQS >= 2x lower bound and unfair on variable-rate servers; "
      "SCFQ/SFQ within bound everywhere; DRR scales with quantum");

  const double bound = sfq::stats::sfq_fairness_bound(kLen, kWeight, kLen, kWeight);
  const double lower = sfq::stats::fairness_lower_bound(kLen, kWeight, kLen, kWeight);

  sfq::bench::JsonReport report("table1_fairness");
  report.add("bounds", "h_bound_s", bound);
  report.add("bounds", "lower_bound_s", lower);

  sfq::stats::TablePrinter table(
      {"scheduler", "worst-H(s)", "H-bound(s)", "x-lower", "varH(s)",
       "var-fair"});
  bool sfq_ok = true;
  for (const std::string name : {"WFQ", "FQS", "SCFQ", "DRR", "SFQ"}) {
    double h = adversarial_h(name, std::make_unique<sfq::net::ConstantRate>(kCap));
    const double hv = variable_rate_h(name);
    const bool var_fair = hv <= bound + 1e-9;
    table.row({name, sfq::stats::TablePrinter::num(h, 4),
               sfq::stats::TablePrinter::num(bound, 4),
               sfq::stats::TablePrinter::num(h / lower, 2),
               sfq::stats::TablePrinter::num(hv, 4),
               var_fair ? "yes" : "NO"});
    report.add(name, "worst_h_s", h);
    report.add(name, "variable_rate_h_s", hv);
    if (name == "SFQ" && (h > bound + 1e-9 || !var_fair)) sfq_ok = false;
  }
  std::printf("\nlower bound (any packet algorithm): %.4f s\n", lower);

  // Table 1's second column — "deviation in delay from WFQ" — measured as
  // the worst EAT-overhang of a low-rate flow among heavy competitors,
  // relative to WFQ's on the identical workload. The paper's entries: 0 for
  // WFQ (by definition), sum l_n/C for SCFQ, weight-dependent for DRR.
  std::printf("\nlow-rate flow worst delay past EAT (10Kb/s among 9 heavy "
              "flows, C=1Mb/s):\n");
  sfq::stats::TablePrinter d({"scheduler", "overhang(ms)", "vs WFQ(ms)"});
  const double wfq_overhang = low_rate_overhang("WFQ");
  for (const std::string name : {"WFQ", "FQS", "SCFQ", "DRR", "SFQ"}) {
    const double o = low_rate_overhang(name);
    d.row({name, sfq::stats::TablePrinter::num(o * 1e3, 2),
           sfq::stats::TablePrinter::num((o - wfq_overhang) * 1e3, 2)});
    report.add(name, "eat_overhang_s", o);
  }

  // Table 1's DRR row is "unbounded": H grows linearly with the quantum
  // (paper: relative to SFQ it can be made as large as desired).
  std::printf("\nDRR fairness vs quantum (SFQ bound stays %.4f s):\n", bound);
  sfq::stats::TablePrinter drr({"quantum(pkts/visit)", "worst-H(s)", "x-SFQ-bound"});
  for (double qw : {1.0, 4.0, 16.0, 64.0}) {
    const double h = adversarial_h(
        "DRR", std::make_unique<sfq::net::ConstantRate>(kCap), qw);
    drr.row({sfq::stats::TablePrinter::num(qw * kWeight / kLen, 0),
             sfq::stats::TablePrinter::num(h, 4),
             sfq::stats::TablePrinter::num(h / bound, 2)});
    report.add("DRR_quantum_" + sfq::stats::TablePrinter::num(qw, 0),
               "worst_h_s", h);
  }
  const std::string json_path = report.write();
  if (!json_path.empty()) std::printf("\nwrote %s\n", json_path.c_str());
  return sfq_ok ? 0 : 1;
}
