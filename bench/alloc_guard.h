#pragma once

#include <cstdint>

namespace sfq::bench {

// Heap-allocation counting guard for perf benchmarks (docs/PERFORMANCE.md).
//
// Linking alloc_guard.cc into a binary replaces the global operator new /
// operator delete with counting versions (the state below). The counter is
// process-global and thread-safe, but the intended use is single-threaded:
// arm() around a measured steady-state loop, then assert disarm() == 0 to
// prove the hot path allocation-free.
//
// The replacement only takes effect if this translation unit is pulled into
// the link, which calling any function below guarantees.

// Zeroes the counter and starts counting.
void alloc_guard_arm();

// Stops counting and returns the number of operator-new calls since arm().
uint64_t alloc_guard_disarm();

// Current count (armed or not).
uint64_t alloc_guard_count();

}  // namespace sfq::bench
