// Computational-efficiency claim (§2, §2.5): SFQ's per-packet cost is
// O(log Q) — the same as SCFQ and Virtual Clock — while WFQ/FQS pay extra for
// the fluid-GPS virtual-time simulation, and DRR is O(1).
//
// google-benchmark microbenchmark: one enqueue+dequeue cycle per iteration at
// steady backlog, swept over the number of flows Q.
// A steady-state phase under the allocation guard (alloc_guard.h) follows
// the google-benchmark sweep: once a discipline's backlog has reached its
// high-water mark, an enqueue+dequeue cycle must not touch the heap for the
// pool-backed tag schedulers. SFQ (the paper's subject), WFQ and FairAirport
// (ring-buffer event lists since the overload-hardening PR) are gated to
// exactly zero with SFQ_PERF_GATE=1; the rest are reported for the
// BENCH_*.json trajectory (docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>

#include "alloc_guard.h"
#include "bench_util.h"
#include "core/scheduler.h"
#include "hier/hsfq_scheduler.h"
#include "obs/trace.h"

namespace {

using namespace sfq;

enum class Trace { kOff, kNullSink };

void run_cycle(benchmark::State& state, const std::string& name,
               Trace trace = Trace::kOff) {
  const int q = static_cast<int>(state.range(0));
  auto sched = bench::make_scheduler(name, 1e9, /*quantum_per_weight=*/1e4);
  obs::Tracer tracer;
  if (trace == Trace::kNullSink) {
    tracer.own(std::make_unique<obs::NullSink>());
    sched->set_tracer(&tracer);
  }
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> len(500.0, 1500.0);
  for (int i = 0; i < q; ++i)
    sched->add_flow(1e6 + 1e3 * i, 1500.0);

  // Prime a steady backlog: 4 packets per flow.
  Time now = 0.0;
  uint64_t seq = 0;
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < q; ++i) {
      Packet p;
      p.flow = static_cast<FlowId>(i);
      p.seq = ++seq;
      p.length_bits = len(rng);
      p.arrival = now;
      sched->enqueue(std::move(p), now);
    }
  }

  for (auto _ : state) {
    auto out = sched->dequeue(now);
    benchmark::DoNotOptimize(out);
    sched->on_transmit_complete(*out, now);
    now += 1e-6;
    Packet p;
    p.flow = out->flow;
    p.seq = ++seq;
    p.length_bits = len(rng);
    p.arrival = now;
    sched->enqueue(std::move(p), now);
  }
  state.SetItemsProcessed(state.iterations());
}

// Hierarchy cost: enqueue+dequeue through a chain of D nested classes (one
// flow at the bottom plus one sibling flow per level to keep every node
// arbitrating). Cost should grow linearly in depth, log in fan-out.
void run_depth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  hier::HsfqScheduler sched;
  auto cls = hier::HsfqScheduler::kRootClass;
  std::vector<FlowId> flows;
  for (int d = 0; d < depth; ++d) {
    flows.push_back(sched.add_flow_in_class(cls, 1e6, 1500.0));
    cls = sched.add_class(cls, 1e6);
  }
  flows.push_back(sched.add_flow_in_class(cls, 1e6, 1500.0));

  uint64_t seq = 0;
  for (int j = 0; j < 4; ++j)
    for (FlowId f : flows) {
      Packet p;
      p.flow = f;
      p.seq = ++seq;
      p.length_bits = 1000.0;
      sched.enqueue(std::move(p), 0.0);
    }
  for (auto _ : state) {
    auto out = sched.dequeue(0.0);
    benchmark::DoNotOptimize(out);
    sched.on_transmit_complete(*out, 0.0);
    Packet p;
    p.flow = out->flow;
    p.seq = ++seq;
    p.length_bits = 1000.0;
    sched.enqueue(std::move(p), 0.0);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HSFQ_Depth(benchmark::State& s) { run_depth(s); }

void BM_SFQ(benchmark::State& s) { run_cycle(s, "SFQ"); }
// The untaken-branch cost of the observability hooks (docs/OBSERVABILITY.md):
// must stay within noise of BM_SFQ.
void BM_SFQ_NullTracer(benchmark::State& s) {
  run_cycle(s, "SFQ", Trace::kNullSink);
}
void BM_SCFQ(benchmark::State& s) { run_cycle(s, "SCFQ"); }
void BM_WFQ(benchmark::State& s) { run_cycle(s, "WFQ"); }
void BM_FQS(benchmark::State& s) { run_cycle(s, "FQS"); }
void BM_DRR(benchmark::State& s) { run_cycle(s, "DRR"); }
void BM_VirtualClock(benchmark::State& s) { run_cycle(s, "VC"); }
void BM_FairAirport(benchmark::State& s) { run_cycle(s, "FairAirport"); }
void BM_HSFQ_Flat(benchmark::State& s) { run_cycle(s, "H-SFQ"); }

// Steady-state allocations per enqueue+dequeue cycle, measured with the
// global operator-new hook after a warm-up that brings the packet pool and
// tag heaps to their high-water mark.
int steady_state_phase() {
  std::printf("\n--- steady-state phase (allocation guard armed) ---\n");
  bench::JsonReport report("scheduler_perf");
  const bool gate = [] {
    const char* v = std::getenv("SFQ_PERF_GATE");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  bool ok = true;

  const struct {
    const char* name;
    bool gated;  // zero steady-state allocations enforced
  } cases[] = {{"SFQ", true},  {"SCFQ", false}, {"VC", false},
               {"DRR", false}, {"WFQ", true},   {"FairAirport", true}};
  constexpr int kFlows = 64;
  constexpr int kCycles = 100000;

  for (const auto& c : cases) {
    auto sched = bench::make_scheduler(c.name, 1e9, 1e4);
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> len(500.0, 1500.0);
    for (int i = 0; i < kFlows; ++i) sched->add_flow(1e6 + 1e3 * i, 1500.0);
    Time now = 0.0;
    uint64_t seq = 0;
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < kFlows; ++i) {
        Packet p;
        p.flow = static_cast<FlowId>(i);
        p.seq = ++seq;
        p.length_bits = len(rng);
        p.arrival = now;
        sched->enqueue(std::move(p), now);
      }
    // Warm-up cycles let lazily-grown structures (GPS event lists, round
    // rings) reach steady state before the guard arms.
    auto cycle = [&] {
      auto out = sched->dequeue(now);
      benchmark::DoNotOptimize(out);
      sched->on_transmit_complete(*out, now);
      now += 1e-6;
      Packet p;
      p.flow = out->flow;
      p.seq = ++seq;
      p.length_bits = len(rng);
      p.arrival = now;
      sched->enqueue(std::move(p), now);
    };
    for (int i = 0; i < kCycles; ++i) cycle();
    bench::alloc_guard_arm();
    for (int i = 0; i < kCycles; ++i) cycle();
    const uint64_t allocs = bench::alloc_guard_disarm();
    const double per_cycle = static_cast<double>(allocs) / kCycles;
    std::printf("%-12s steady allocs/cycle=%.4f (%llu over %d cycles)\n",
                c.name, per_cycle, static_cast<unsigned long long>(allocs),
                kCycles);
    report.add(c.name, "steady_allocs_per_cycle", per_cycle);
    if (c.gated && gate && allocs != 0) {
      std::printf("FAIL %s: %llu heap allocations in the steady-state loop "
                  "(expected 0)\n",
                  c.name, static_cast<unsigned long long>(allocs));
      ok = false;
    }
  }
  const std::string path = report.write();
  std::printf("report: %s\n", path.empty() ? "(write failed)" : path.c_str());
  if (gate) std::printf("alloc gate: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

BENCHMARK(BM_SFQ)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_SFQ_NullTracer)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_SCFQ)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_WFQ)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_FQS)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_DRR)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_VirtualClock)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_FairAirport)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_HSFQ_Flat)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_HSFQ_Depth)->DenseRange(1, 9, 2);

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return steady_state_phase();
}
