// Computational-efficiency claim (§2, §2.5): SFQ's per-packet cost is
// O(log Q) — the same as SCFQ and Virtual Clock — while WFQ/FQS pay extra for
// the fluid-GPS virtual-time simulation, and DRR is O(1).
//
// google-benchmark microbenchmark: one enqueue+dequeue cycle per iteration at
// steady backlog, swept over the number of flows Q.
#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <string>

#include "bench_util.h"
#include "core/scheduler.h"
#include "hier/hsfq_scheduler.h"
#include "obs/trace.h"

namespace {

using namespace sfq;

enum class Trace { kOff, kNullSink };

void run_cycle(benchmark::State& state, const std::string& name,
               Trace trace = Trace::kOff) {
  const int q = static_cast<int>(state.range(0));
  auto sched = bench::make_scheduler(name, 1e9, /*quantum_per_weight=*/1e4);
  obs::Tracer tracer;
  if (trace == Trace::kNullSink) {
    tracer.own(std::make_unique<obs::NullSink>());
    sched->set_tracer(&tracer);
  }
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> len(500.0, 1500.0);
  for (int i = 0; i < q; ++i)
    sched->add_flow(1e6 + 1e3 * i, 1500.0);

  // Prime a steady backlog: 4 packets per flow.
  Time now = 0.0;
  uint64_t seq = 0;
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < q; ++i) {
      Packet p;
      p.flow = static_cast<FlowId>(i);
      p.seq = ++seq;
      p.length_bits = len(rng);
      p.arrival = now;
      sched->enqueue(std::move(p), now);
    }
  }

  for (auto _ : state) {
    auto out = sched->dequeue(now);
    benchmark::DoNotOptimize(out);
    sched->on_transmit_complete(*out, now);
    now += 1e-6;
    Packet p;
    p.flow = out->flow;
    p.seq = ++seq;
    p.length_bits = len(rng);
    p.arrival = now;
    sched->enqueue(std::move(p), now);
  }
  state.SetItemsProcessed(state.iterations());
}

// Hierarchy cost: enqueue+dequeue through a chain of D nested classes (one
// flow at the bottom plus one sibling flow per level to keep every node
// arbitrating). Cost should grow linearly in depth, log in fan-out.
void run_depth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  hier::HsfqScheduler sched;
  auto cls = hier::HsfqScheduler::kRootClass;
  std::vector<FlowId> flows;
  for (int d = 0; d < depth; ++d) {
    flows.push_back(sched.add_flow_in_class(cls, 1e6, 1500.0));
    cls = sched.add_class(cls, 1e6);
  }
  flows.push_back(sched.add_flow_in_class(cls, 1e6, 1500.0));

  uint64_t seq = 0;
  for (int j = 0; j < 4; ++j)
    for (FlowId f : flows) {
      Packet p;
      p.flow = f;
      p.seq = ++seq;
      p.length_bits = 1000.0;
      sched.enqueue(std::move(p), 0.0);
    }
  for (auto _ : state) {
    auto out = sched.dequeue(0.0);
    benchmark::DoNotOptimize(out);
    sched.on_transmit_complete(*out, 0.0);
    Packet p;
    p.flow = out->flow;
    p.seq = ++seq;
    p.length_bits = 1000.0;
    sched.enqueue(std::move(p), 0.0);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HSFQ_Depth(benchmark::State& s) { run_depth(s); }

void BM_SFQ(benchmark::State& s) { run_cycle(s, "SFQ"); }
// The untaken-branch cost of the observability hooks (docs/OBSERVABILITY.md):
// must stay within noise of BM_SFQ.
void BM_SFQ_NullTracer(benchmark::State& s) {
  run_cycle(s, "SFQ", Trace::kNullSink);
}
void BM_SCFQ(benchmark::State& s) { run_cycle(s, "SCFQ"); }
void BM_WFQ(benchmark::State& s) { run_cycle(s, "WFQ"); }
void BM_FQS(benchmark::State& s) { run_cycle(s, "FQS"); }
void BM_DRR(benchmark::State& s) { run_cycle(s, "DRR"); }
void BM_VirtualClock(benchmark::State& s) { run_cycle(s, "VC"); }
void BM_FairAirport(benchmark::State& s) { run_cycle(s, "FairAirport"); }
void BM_HSFQ_Flat(benchmark::State& s) { run_cycle(s, "H-SFQ"); }

}  // namespace

BENCHMARK(BM_SFQ)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_SFQ_NullTracer)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_SCFQ)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_WFQ)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_FQS)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_DRR)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_VirtualClock)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_FairAirport)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_HSFQ_Flat)->RangeMultiplier(8)->Range(8, 4096);
BENCHMARK(BM_HSFQ_Depth)->DenseRange(1, 9, 2);

BENCHMARK_MAIN();
