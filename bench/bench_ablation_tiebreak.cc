// Ablation (paper §2.3 discussion): SFQ's delay *guarantee* is independent
// of the tie-breaking rule, but the rule changes average delay — giving
// priority to low-throughput (interactive) flows on equal start tags lowers
// their average delay without hurting the guarantee of anyone.
//
// Workload: one 32 Kb/s interactive flow among seven 100 Kb/s bulk flows on
// a 1 Mb/s link (the Figure 2(b) mix), Poisson arrivals. All flows start
// together so equal-start-tag ties actually occur at busy-period starts.
//
// Expected shape: mean delay of the interactive flow ordered
// low-weight-first <= FIFO-tie <= high-weight-first, with identical worst
// overhang vs Theorem 4 for all three rules.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "sim/simulator.h"
#include "stats/delay_stats.h"
#include "stats/time_series.h"
#include "traffic/sources.h"

namespace {

using namespace sfq;

struct Out {
  double mean_ms;
  double worst_overhang_ms;
};

Out run(TieBreak tb, uint64_t seed) {
  const double kC = megabits_per_sec(1);
  const double kLen = bytes(200);
  sim::Simulator sim;
  SfqScheduler sched(tb);
  FlowId inter = sched.add_flow(kilobits_per_sec(32), kLen, "interactive");
  std::vector<FlowId> bulk;
  for (int i = 0; i < 7; ++i)
    bulk.push_back(sched.add_flow(kilobits_per_sec(100), kLen));

  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(kC));
  stats::DelayStats delays;
  std::vector<Time> eats;
  Time worst = -kTimeInfinity;
  server.set_departure([&](const Packet& p, Time t) {
    delays.add(p.flow, t - p.arrival);
    if (p.flow == inter) worst = std::max(worst, t - eats[p.seq - 1]);
  });
  qos::EatTracker eat;
  auto emit_i = [&](Packet p) {
    eats.push_back(
        eat.on_arrival(sim.now(), p.length_bits, kilobits_per_sec(32)));
    server.inject(std::move(p));
  };
  auto emit_b = [&](Packet p) { server.inject(std::move(p)); };

  std::vector<std::unique_ptr<traffic::Source>> src;
  src.push_back(std::make_unique<traffic::PoissonSource>(
      sim, inter, emit_i, kilobits_per_sec(32), kLen, seed));
  for (std::size_t i = 0; i < bulk.size(); ++i)
    src.push_back(std::make_unique<traffic::PoissonSource>(
        sim, bulk[i], emit_b, kilobits_per_sec(100), kLen, seed + 1 + i));
  for (auto& s : src) s->run(0.0, 500.0);
  sim.run_until(500.0);
  sim.run();
  return {to_milliseconds(delays.mean(inter)), to_milliseconds(worst)};
}

}  // namespace

int main() {
  using namespace sfq;
  bench::print_header(
      "Ablation — SFQ tie-breaking rules and interactive delay",
      "SFQ paper §2.3 (tie-break discussion after Theorem 5)",
      "low-weight-first lowers the interactive flow's average delay; the "
      "Theorem-4 guarantee is rule-independent");

  const double kC = megabits_per_sec(1);
  const double kLen = bytes(200);
  const Time beta =
      qos::sfq_fc_delay_term({kC, 0.0}, 7.0 * kLen, kLen);

  stats::TablePrinter t({"tie-break", "mean delay(ms)", "worst-EAT-overhang(ms)",
                         "Thm4 bound(ms)"});
  double low_mean = 0.0, high_mean = 0.0;
  bool bound_ok = true;
  for (auto [name, tb] :
       {std::pair<const char*, TieBreak>{"low-weight-first",
                                         TieBreak::kLowWeightFirst},
        {"fifo", TieBreak::kFifo},
        {"high-weight-first", TieBreak::kHighWeightFirst}}) {
    // Average over seeds.
    double mean = 0.0, worst = 0.0;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
      const Out o = run(tb, 100 + r * 17);
      mean += o.mean_ms / reps;
      worst = std::max(worst, o.worst_overhang_ms);
    }
    if (tb == TieBreak::kLowWeightFirst) low_mean = mean;
    if (tb == TieBreak::kHighWeightFirst) high_mean = mean;
    if (worst > to_milliseconds(beta) + 1e-6) bound_ok = false;
    t.row({name, stats::TablePrinter::num(mean, 3),
           stats::TablePrinter::num(worst, 3),
           stats::TablePrinter::num(to_milliseconds(beta), 3)});
  }

  const bool order_ok = low_mean <= high_mean + 1e-9;
  std::printf("\nshape check: low-weight-first <= high-weight-first mean "
              "delay: %s; Theorem-4 bound independent of rule: %s\n",
              order_ok ? "yes" : "NO", bound_ok ? "yes" : "NO");
  return (order_ok && bound_ok) ? 0 : 1;
}
