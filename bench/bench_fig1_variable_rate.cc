// Reproduces Figure 1 of the paper.
//
// Topology (Fig 1a): three sources share one switch output link (2.5 Mb/s) to
// a common destination. Source 1 is an MPEG VBR video flow (avg 1.21 Mb/s,
// 50-byte packets) given strict priority; sources 2 and 3 are TCP Reno flows
// (200-byte packets) scheduled by WFQ or SFQ over the *residual* capacity, so
// the scheduler under test sees a variable-rate server. Source 3 starts
// 500 ms after sources 1 and 2; the run lasts 1 s.
//
// Output (Fig 1b): cumulative packets received by the destination from
// sources 2 and 3, per 50 ms bucket, for both schedulers; plus the paper's
// headline counts.
//
// Expected shape: under WFQ source 3 is starved after it starts (the paper
// saw 130-ish vs ~0 packets in the first 500 ms; 2 vs 145 in the first
// 435 ms); under SFQ both TCP flows receive nearly equal counts.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "net/priority_server.h"
#include "net/rate_profile.h"
#include "sched/wfq_scheduler.h"
#include "sim/simulator.h"
#include "stats/time_series.h"
#include "traffic/tcp_reno.h"
#include "traffic/vbr_video.h"

namespace {

using namespace sfq;

struct Fig1Result {
  std::vector<double> cum2, cum3;  // cumulative deliveries per 50 ms bucket
  uint64_t after_start_2 = 0;      // deliveries in [0.5, 1.0]
  uint64_t after_start_3 = 0;
};

Fig1Result run(const std::string& sched_name) {
  const double kLink = megabits_per_sec(2.5);
  const Time kEnd = 1.0;
  sim::Simulator sim;

  auto sched = bench::make_scheduler(sched_name, kLink);
  FlowId f2 = sched->add_flow(1.0, bytes(200), "tcp-2");
  FlowId f3 = sched->add_flow(1.0, bytes(200), "tcp-3");

  net::PriorityServer server(sim, *sched,
                             std::make_unique<net::ConstantRate>(kLink));

  // Source 1: VBR video, strict priority.
  traffic::MpegVbrSource::Params vp;
  vp.average_rate = 1.21e6;
  vp.packet_bits = bytes(50);
  vp.seed = 1996;
  traffic::MpegVbrSource video(
      sim, 0, [&](Packet p) { server.inject_high(std::move(p)); }, vp);
  video.run(0.0, kEnd);

  // Sources 2 & 3: TCP Reno over the low-priority scheduler. ACK path is a
  // fixed 5 ms return delay (uncongested reverse direction).
  traffic::TcpRenoSource::Params tp;
  tp.packet_bits = bytes(200);
  // A 64 KB receiver window over 200-byte segments (REAL's default scale):
  // source 2 builds a large standing queue during [0, 0.5), which is what
  // lets WFQ's stale virtual time starve source 3 for hundreds of ms.
  tp.max_window = 320.0;
  tp.initial_ssthresh = 320.0;

  stats::TimeSeries deliveries(0.05);
  Fig1Result out;

  std::unique_ptr<traffic::TcpRenoSource> src2, src3;
  traffic::TcpRenoSink sink2([&](uint64_t cum) {
    sim.after(0.005, [&, cum] { src2->on_ack(cum); });
  });
  traffic::TcpRenoSink sink3([&](uint64_t cum) {
    sim.after(0.005, [&, cum] { src3->on_ack(cum); });
  });
  server.set_low_departure([&](const Packet& p, Time t) {
    deliveries.add(p.flow, t, 1.0);
    if (p.flow == f2) {
      if (t >= 0.5) ++out.after_start_2;
      sink2.on_segment(p);
    } else {
      if (t >= 0.5) ++out.after_start_3;
      sink3.on_segment(p);
    }
  });
  src2 = std::make_unique<traffic::TcpRenoSource>(
      sim, f2, tp, [&](Packet p) { server.inject_low(std::move(p)); });
  src3 = std::make_unique<traffic::TcpRenoSource>(
      sim, f3, tp, [&](Packet p) { server.inject_low(std::move(p)); });
  src2->start(0.0);
  src3->start(0.5);  // 500 ms later, as in the paper

  sim.run_until(kEnd);
  out.cum2 = deliveries.cumulative(f2, kEnd);
  out.cum3 = deliveries.cumulative(f3, kEnd);
  return out;
}

}  // namespace

int main() {
  sfq::bench::print_header(
      "Figure 1(b) — TCP sequence progress behind a priority VBR flow",
      "SFQ paper §2.1, Figure 1",
      "WFQ starves the late TCP source on the residual-rate link; SFQ "
      "splits the residual bandwidth evenly after t=0.5s");

  const Fig1Result wfq = run("WFQ");
  const Fig1Result sfq_r = run("SFQ");

  std::printf("\ncumulative packets delivered (50 ms buckets):\n");
  sfq::stats::TablePrinter table(
      {"t(ms)", "WFQ-src2", "WFQ-src3", "SFQ-src2", "SFQ-src3"});
  for (std::size_t b = 0; b < wfq.cum2.size(); ++b) {
    table.row({std::to_string((b + 1) * 50),
               sfq::stats::TablePrinter::num(wfq.cum2[b], 0),
               sfq::stats::TablePrinter::num(b < wfq.cum3.size() ? wfq.cum3[b] : 0, 0),
               sfq::stats::TablePrinter::num(sfq_r.cum2[b], 0),
               sfq::stats::TablePrinter::num(b < sfq_r.cum3.size() ? sfq_r.cum3[b] : 0, 0)});
  }

  std::printf("\npackets received during [500ms, 1s] (paper: WFQ 130 vs ~0;"
              " SFQ 189 vs 190):\n");
  std::printf("  WFQ : src2 %llu, src3 %llu\n",
              static_cast<unsigned long long>(wfq.after_start_2),
              static_cast<unsigned long long>(wfq.after_start_3));
  std::printf("  SFQ : src2 %llu, src3 %llu\n",
              static_cast<unsigned long long>(sfq_r.after_start_2),
              static_cast<unsigned long long>(sfq_r.after_start_3));

  const bool wfq_starves =
      wfq.after_start_3 * 4 < wfq.after_start_2;  // heavily skewed
  const double ratio =
      sfq_r.after_start_3 > 0
          ? static_cast<double>(sfq_r.after_start_2) /
                static_cast<double>(sfq_r.after_start_3)
          : 1e9;
  const bool sfq_fair = ratio > 0.6 && ratio < 1.67;
  std::printf("\nshape check: WFQ starves late flow: %s; SFQ splits evenly: %s\n",
              wfq_starves ? "yes" : "NO", sfq_fair ? "yes" : "NO");
  return (wfq_starves && sfq_fair) ? 0 : 1;
}
