// Reproduces the §2.3 numeric example: the maximum-delay gap between SCFQ and
// SFQ, l/r - l/C (eq. 57), its growth with hop count K and packet size, plus
// an adversarial single-server simulation showing the gap is real.
//
// Expected shape: 24.4 ms for r=64 Kb/s, l=200 B, C=100 Mb/s; 122 ms for
// K=5 hops; linear growth in packet size; simulated SCFQ delay near its
// bound and far above SFQ's.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/bounds.h"
#include "sched/scfq_scheduler.h"
#include "sim/simulator.h"
#include "stats/time_series.h"

namespace {

using namespace sfq;

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

// Adversarial burst: all competitors dump a backlog at t=0, then the tagged
// low-rate flow's single packet (EAT = 0) arrives. Returns its departure.
Time tagged_departure(Scheduler& sched, double capacity, double len,
                      int n_others, int backlog) {
  sim::Simulator sim;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(capacity));
  Time depart = 0.0;
  server.set_departure([&](const Packet& p, Time t) {
    if (p.flow == 0) depart = t;
  });
  sim.at(0.0, [&] {
    for (int i = 1; i <= n_others; ++i)
      for (int j = 1; j <= backlog; ++j) server.inject(mk(i, j, len));
    server.inject(mk(0, 1, len));
  });
  sim.run();
  return depart;
}

}  // namespace

int main() {
  sfq::bench::print_header(
      "SCFQ vs SFQ maximum delay (eqs. 56-57 numeric example)",
      "SFQ paper §2.3",
      "gap = l/r - l/C = 24.4 ms at 64 Kb/s; x K over K hops; linear in "
      "packet size; SCFQ's simulated delay near its bound, SFQ's far below");

  const double c = megabits_per_sec(100);
  const double r = 64.0 * 1024.0;  // the paper's 64 Kb/s
  const double l = bytes(200);

  std::printf("\nper-hop gap and end-to-end growth (r=64Kb/s, l=200B, "
              "C=100Mb/s):\n");
  sfq::stats::TablePrinter t1({"K hops", "gap (ms)"});
  for (int k = 1; k <= 5; ++k)
    t1.row({std::to_string(k),
            sfq::stats::TablePrinter::num(
                to_milliseconds(k * qos::scfq_sfq_delay_gap(c, l, r)), 1)});

  std::printf("\ngap vs packet size (single hop):\n");
  sfq::stats::TablePrinter t2({"bytes", "gap (ms)"});
  for (double b : {100.0, 200.0, 400.0, 800.0, 1500.0})
    t2.row({sfq::stats::TablePrinter::num(b, 0),
            sfq::stats::TablePrinter::num(
                to_milliseconds(qos::scfq_sfq_delay_gap(c, bytes(b), r)), 1)});

  // Down-scaled adversarial simulation: C = 1 Mb/s, tagged 10 Kb/s flow, 9
  // competitors sharing the rest, 12-packet backlogs.
  const double cs = megabits_per_sec(1);
  const double rs = 10e3;
  const int n_others = 9;
  const double other_rate = (cs - rs) / n_others;

  ScfqScheduler scfq;
  SfqScheduler sfq_s;
  for (Scheduler* s : {static_cast<Scheduler*>(&scfq),
                       static_cast<Scheduler*>(&sfq_s)}) {
    s->add_flow(rs, l, "tagged");
    for (int i = 0; i < n_others; ++i) s->add_flow(other_rate, l);
  }
  const Time d_scfq = tagged_departure(scfq, cs, l, n_others, 12);
  const Time d_sfq = tagged_departure(sfq_s, cs, l, n_others, 12);

  const Time scfq_bound = qos::scfq_delay_term(cs, n_others * l, l, rs);
  const Time sfq_bound = qos::sfq_fc_delay_term({cs, 0.0}, n_others * l, l);
  std::printf("\nsimulated tagged-packet departure (EAT=0):\n");
  std::printf("  SCFQ  %8.1f ms   (bound %8.1f ms)\n",
              to_milliseconds(d_scfq), to_milliseconds(scfq_bound));
  std::printf("  SFQ   %8.1f ms   (bound %8.1f ms)\n",
              to_milliseconds(d_sfq), to_milliseconds(sfq_bound));

  const bool ok = d_scfq <= scfq_bound + 1e-9 && d_sfq <= sfq_bound + 1e-9 &&
                  d_scfq > 4.0 * d_sfq;
  std::printf("\nshape check: both within bounds and SCFQ >> SFQ: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
