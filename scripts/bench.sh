#!/usr/bin/env bash
# Benchmark sweep: Release build, then every binary in build/bench/ in
# sequence. Each bench prints its paper-shape verdict (non-zero exit on a
# shape violation) and writes BENCH_<name>.json; with BENCH_DIR honoured by
# bench_util, all JSON reports land in one directory for offline diffing.
#
# The perf-relevant reports (sim_throughput, scheduler_perf, rt_engine) are
# additionally copied to canonical BENCH_*.json files at the repo root —
# those are TRACKED, so committing them records the perf trajectory commit
# over commit (docs/PERFORMANCE.md). Compare against the pre-optimisation
# snapshots in bench/baselines/. Every sweep also appends one JSON line per
# (bench, scenario, metric, value, sha) record to the tracked
# BENCH_HISTORY.jsonl, the append-only perf history.
#
#   scripts/bench.sh [out-dir]      # default out-dir: bench-results/
#
# Set BENCH_FILTER to a grep pattern to run a subset, e.g.
#   BENCH_FILTER=rt_engine scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${BUILD_DIR:-build}
OUT=${1:-bench-results}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$(nproc)"

mkdir -p "$OUT"
export BENCH_DIR
BENCH_DIR=$(cd "$OUT" && pwd)

failed=()
for bin in "$BUILD"/bench/*; do
  [[ -x "$bin" && ! -d "$bin" ]] || continue
  name=$(basename "$bin")
  if [[ -n "${BENCH_FILTER:-}" ]] && ! grep -qE "$BENCH_FILTER" <<<"$name"; then
    continue
  fi
  echo
  echo "### $name"
  if ! "$bin" > "$BENCH_DIR/$name.txt" 2>&1; then
    failed+=("$name")
    echo "FAILED (see $OUT/$name.txt)"
  fi
  tail -n 3 "$BENCH_DIR/$name.txt"
done

echo
echo "reports in $OUT/:"
ls "$BENCH_DIR" | grep '\.json$' || true

# Canonical trajectory: the perf-relevant reports live (tracked) at the repo
# root so the perf history survives in git instead of an ignored scratch dir.
for perf in sim_throughput scheduler_perf rt_engine telemetry_overhead \
            flow_scale; do
  if [[ -f "$BENCH_DIR/BENCH_$perf.json" ]]; then
    cp "$BENCH_DIR/BENCH_$perf.json" "BENCH_$perf.json"
    echo "canonical: BENCH_$perf.json"
  fi
done

# Append this sweep to the tracked BENCH_HISTORY.jsonl: one JSON line per
# (bench, scenario, metric) record, stamped with the git SHA, so the perf
# trajectory is queryable across commits without walking git history for the
# canonical snapshots. Re-running a sweep at the same SHA (filtered re-runs,
# local iteration) must not accumulate duplicates: the history is deduped on
# (bench, scenario, metric, sha), keeping the latest record for each key, so
# every key appears once per commit with its freshest value.
shopt -s nullglob
reports=("$BENCH_DIR"/BENCH_*.json)
shopt -u nullglob
if ((${#reports[@]})) && command -v python3 >/dev/null; then
  sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
  python3 - "$sha" "${reports[@]}" <<'EOF'
import json, os, sys
sha, paths = sys.argv[1], sys.argv[2:]
hist_path = "BENCH_HISTORY.jsonl"
records = []
if os.path.exists(hist_path):
    with open(hist_path) as hist:
        for line in hist:
            line = line.strip()
            if line:
                records.append(json.loads(line))
n = 0
for path in paths:
    for rec in json.load(open(path)):
        records.append({"bench": rec["bench"], "scenario": rec["scenario"],
                        "metric": rec["metric"], "value": rec["value"],
                        "sha": sha})
        n += 1
# Last write wins per key; insertion order of the surviving records is the
# order each key was FIRST seen, so the file stays chronologically stable.
deduped = {}
for rec in records:
    deduped[(rec["bench"], rec["scenario"], rec["metric"], rec["sha"])] = rec
dropped = len(records) - len(deduped)
with open(hist_path, "w") as hist:
    for rec in deduped.values():
        hist.write(json.dumps(rec) + "\n")
print(f"history: appended {n} records @ {sha} to {hist_path}"
      + (f" ({dropped} duplicate(s) collapsed)" if dropped else ""))
EOF
else
  echo "no JSON reports or no python3 - BENCH_HISTORY.jsonl not appended"
fi

if ((${#failed[@]})); then
  echo "bench.sh: shape checks FAILED: ${failed[*]}"
  exit 1
fi
echo "bench.sh: all shape checks passed"
