#!/usr/bin/env bash
# ThreadSanitizer sweep over the concurrent code (src/rt/): Debug build with
# -fsanitize=thread, the rt test binaries, and an sfq_serve smoke run that
# exercises multi-producer ingress, the dispatcher, live stats reads, and
# stop() from the main thread. Any data-race report fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${TSAN_BUILD_DIR:-build-tsan}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD" -j"$(nproc)" --target sfq_tests sfq_serve

export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1

ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure \
  -R 'SpscRing|RtEngine|ShardedEngine|ShardRouter|ShardFailover|Telemetry|CalendarQueue|FlowTable|SfqWheel'

# Smoke: 4 producers paced at moderate overload, traced (SyncSink path), then
# a second unpaced blast run (offer_wait/backpressure path), then a stats run
# that races the stats thread (console + HTTP exposition) against the
# dispatcher and producers, then a 4-shard sharded-engine run that races 4
# dispatchers, the root stats thread and the rebalance thread against the
# producers (cross-shard routing + per-shard ledgers under TSAN), and
# a shard-failover run that races the supervisor thread (fence,
# harvest, rehome, cold restart, rehome back) against dispatchers, stats,
# rebalance and producers while shard 1 is killed mid-run, and finally an
# SFQ-W run driving the timestamp-wheel ready core (+ flow GC reclaim paths)
# under the same multi-producer ingress races.
"$BUILD/examples/sfq_serve" --producers 4 --flows 4 --duration 0.3 \
  --rate 20e6 --load 1.5 --buffer 128 --policy pushout > /dev/null
"$BUILD/examples/sfq_serve" --producers 4 --flows 4 --duration 0.05 \
  --rate 1e12 --unpaced --buffer 0 > /dev/null
"$BUILD/examples/sfq_serve" --producers 4 --flows 4 --duration 0.4 \
  --rate 20e6 --load 1.2 --buffer 256 --stats-interval 0.1 \
  --stats-port 0 > /dev/null 2>&1
"$BUILD/examples/sfq_serve" --shards 4 --producers 4 --flows 8 \
  --duration 0.5 --rate 20e6 --load 2.5 --buffer 64 --shed \
  --stats-interval 0.1 --stats-port 0 > /dev/null 2>&1
"$BUILD/examples/sfq_serve" --shards 4 --producers 2 --flows 8 \
  --duration 0.8 --rate 20e6 --load 2.5 --buffer 128 --policy pushout \
  --stats-interval 0.2 --stats-port 0 --stall-timeout 0.1 \
  --failover --fault-kill 0.25,1 > /dev/null 2>&1
"$BUILD/examples/sfq_serve" --sched SFQ-W --producers 4 --flows 4 \
  --duration 0.3 --rate 20e6 --load 1.5 --buffer 128 \
  --policy pushout > /dev/null

echo "tsan.sh: TSAN clean"
