#!/usr/bin/env bash
# Short overload+fault soak (docs/ROBUSTNESS.md): sfq_serve is pushed 2.5x
# past link capacity with admission control on while a scripted rt fault
# plan hits the dispatcher — a pause longer than the stall window (a forced
# stall), then a forward clock jump, on top of the sustained overload burst
# itself. The gate asserts the engine self-heals end to end:
#
#   * exit status 0 — a *recovered* stall, not a permanent one (sfq_serve
#     exits non-zero when the restart budget runs out or the post-run
#     conservation self-check fails),
#   * the watchdog line reports the stall was detected and service resumed,
#   * shedding actually engaged (weighted-fair `shed` drops under overload),
#   * the ledger conservation self-check passed exactly.
#
# With --kill-shard the soak instead exercises shard failover
# (docs/ROBUSTNESS.md "Shard failover"): a 4-shard run at 2.5x load takes a
# permanent mid-run shard kill under --failover. The gate asserts the
# supervisor completes the full lifecycle — fence + harvest, rehome onto
# survivors, cold restart, rehome back — with the migration-extended ledger
# exact and the survivors' fairness within the extended bound:
#
#   * exit status 0 — sfq_serve self-checks conservation and fairness,
#   * the failover epoch log reports >= 1 completed failover and
#     "cold restart OK, flows rehomed back",
#   * "conservation OK" — migrated_in == migrated_out settled exactly,
#   * the fairness verdict line is OK (survivors within
#     fairness_bound + migration_slack).
#
# The kill soak uses --policy pushout: synchronized CBR + taildrop + a small
# shared buffer phase-locks the producer ring drain order and starves
# specific flows even WITHOUT a kill (a pre-existing traffic pathology, not
# a failover property), so taildrop would gate on the wrong thing here.
#
# The full run transcript lands in the out-dir so CI can upload it as the
# repro artifact when the gate fails.
#
#   scripts/soak.sh [out-dir]               # default out-dir: soak-out/
#   scripts/soak.sh --kill-shard [out-dir]  # shard-failover soak
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${BUILD_DIR:-build-soak}
MODE=overload
if [[ "${1:-}" == "--kill-shard" ]]; then
  MODE=kill
  shift
fi
OUT=${1:-soak-out}
mkdir -p "$OUT"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DSFQ_WERROR=ON
cmake --build "$BUILD" -j"$(nproc)" --target sfq_serve

if [[ "$MODE" == kill ]]; then
  # 8 flows spread over 4 shards by the rendezvous router; the kill at
  # t=0.8 fences shard 1 mid-run, its flows rehome onto the 3 survivors,
  # and the supervised cold restart rehomes them back — all while the
  # producers keep offering 2.5x the per-flow reservation.
  log="$OUT/soak_kill.txt"
  status=0
  "$BUILD/examples/sfq_serve" \
      --sched SFQ --shards 4 --flows 8 --producers 2 --rate 80e6 \
      --duration 2.5 --load 2.5 --buffer 128 --policy pushout \
      --stall-timeout 0.1 --failover --fault-kill 0.8,1 \
      > "$log" 2>&1 || status=$?

  cat "$log"
  if ((status != 0)); then
    echo "soak.sh: sfq_serve exited $status (failover stuck, conservation" \
         "violation, or fairness outside the extended bound; transcript:" \
         "$log)"
    exit 1
  fi
  if ! grep -Eq "^failover  [1-9]" "$log"; then
    echo "soak.sh: expected >= 1 completed shard failover in the epoch log;" \
         "transcript: $log"
    exit 1
  fi
  if ! grep -q "cold restart OK, flows rehomed back" "$log"; then
    echo "soak.sh: the killed shard never restarted and took its flows" \
         "back (supervisor lifecycle incomplete); transcript: $log"
    exit 1
  fi
  if ! grep -q "conservation OK" "$log"; then
    echo "soak.sh: migration-extended ledger conservation self-check line" \
         "missing; transcript: $log"
    exit 1
  fi
  if ! grep -Eq "^fairness .*: OK" "$log"; then
    echo "soak.sh: survivors' fairness verdict not OK against the" \
         "migration-extended bound; transcript: $log"
    exit 1
  fi
  echo "soak.sh: shard-failover soak passed (kill -> rehome -> restart ->" \
       "rehome back; ledger exact, fairness within extended bound)"
  exit 0
fi

# Default weights give the 4 flows half the 2 Mb/s link, so --load 5 offers
# 2.5x capacity. The 0.3 s pause at t=0.8 must trip the 0.1 s watchdog; the
# +0.4 s jump at t=1.2 ages every pacing deadline at once.
log="$OUT/soak_serve.txt"
status=0
"$BUILD/examples/sfq_serve" \
    --sched SFQ --flows 4 --producers 2 --rate 2e6 --duration 2.5 \
    --load 5 --buffer 64 --shed --policy taildrop \
    --stall-timeout 0.1 --restart-budget 3 \
    --fault-pause 0.8,0.3 --fault-jump 1.2,0.4 \
    > "$log" 2>&1 || status=$?

cat "$log"
if ((status != 0)); then
  echo "soak.sh: sfq_serve exited $status (permanent stall or conservation" \
       "violation; transcript: $log)"
  exit 1
fi
if ! grep -q "WATCHDOG: recovered" "$log"; then
  echo "soak.sh: expected a recovered stall (the 0.3s pause must trip the" \
       "0.1s watchdog and heal); transcript: $log"
  exit 1
fi
if ! grep -q "conservation OK" "$log"; then
  echo "soak.sh: ledger conservation self-check line missing; transcript:" \
       "$log"
  exit 1
fi
if ! grep -Eq "drops by cause:.* shed=[1-9]" "$log"; then
  echo "soak.sh: admission control never shed under 2.5x load; transcript:" \
       "$log"
  exit 1
fi
echo "soak.sh: overload+fault soak passed (stall recovered, shedding" \
     "engaged, ledger conserved)"
