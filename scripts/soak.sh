#!/usr/bin/env bash
# Short overload+fault soak (docs/ROBUSTNESS.md): sfq_serve is pushed 2.5x
# past link capacity with admission control on while a scripted rt fault
# plan hits the dispatcher — a pause longer than the stall window (a forced
# stall), then a forward clock jump, on top of the sustained overload burst
# itself. The gate asserts the engine self-heals end to end:
#
#   * exit status 0 — a *recovered* stall, not a permanent one (sfq_serve
#     exits non-zero when the restart budget runs out or the post-run
#     conservation self-check fails),
#   * the watchdog line reports the stall was detected and service resumed,
#   * shedding actually engaged (weighted-fair `shed` drops under overload),
#   * the ledger conservation self-check passed exactly.
#
# The full run transcript lands in the out-dir so CI can upload it as the
# repro artifact when the gate fails.
#
#   scripts/soak.sh [out-dir]      # default out-dir: soak-out/
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${BUILD_DIR:-build-soak}
OUT=${1:-soak-out}
mkdir -p "$OUT"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DSFQ_WERROR=ON
cmake --build "$BUILD" -j"$(nproc)" --target sfq_serve

# Default weights give the 4 flows half the 2 Mb/s link, so --load 5 offers
# 2.5x capacity. The 0.3 s pause at t=0.8 must trip the 0.1 s watchdog; the
# +0.4 s jump at t=1.2 ages every pacing deadline at once.
log="$OUT/soak_serve.txt"
status=0
"$BUILD/examples/sfq_serve" \
    --sched SFQ --flows 4 --producers 2 --rate 2e6 --duration 2.5 \
    --load 5 --buffer 64 --shed --policy taildrop \
    --stall-timeout 0.1 --restart-budget 3 \
    --fault-pause 0.8,0.3 --fault-jump 1.2,0.4 \
    > "$log" 2>&1 || status=$?

cat "$log"
if ((status != 0)); then
  echo "soak.sh: sfq_serve exited $status (permanent stall or conservation" \
       "violation; transcript: $log)"
  exit 1
fi
if ! grep -q "WATCHDOG: recovered" "$log"; then
  echo "soak.sh: expected a recovered stall (the 0.3s pause must trip the" \
       "0.1s watchdog and heal); transcript: $log"
  exit 1
fi
if ! grep -q "conservation OK" "$log"; then
  echo "soak.sh: ledger conservation self-check line missing; transcript:" \
       "$log"
  exit 1
fi
if ! grep -Eq "drops by cause:.* shed=[1-9]" "$log"; then
  echo "soak.sh: admission control never shed under 2.5x load; transcript:" \
       "$log"
  exit 1
fi
echo "soak.sh: overload+fault soak passed (stall recovered, shedding" \
     "engaged, ledger conserved)"
