#!/usr/bin/env bash
# ASan + UBSan sweep: Debug build with both sanitizers, full test suite, and
# the fault-injection example (the code path that exercises mid-run flow
# removal, pushout, and profile swapping). Any sanitizer report fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${SAN_BUILD_DIR:-build-asan}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$BUILD" -j"$(nproc)"

export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1

ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure

"$BUILD/examples/sfq_lab" --check examples/configs/faulty_link.conf > /dev/null

echo "sanitize.sh: ASan+UBSan clean"
