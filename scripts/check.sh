#!/usr/bin/env bash
# Full pre-merge gate: warning-clean Release build, the whole test suite, and
# a traced example run whose JSONL output must parse and whose invariants
# must hold (docs/OBSERVABILITY.md). A fault-injection run (outage + loss +
# churn + pushout; docs/ROBUSTNESS.md) must also keep the invariants clean.
# Set SANITIZE=1 to additionally run the ASan+UBSan sweep (scripts/sanitize.sh)
# and TSAN=1 for the ThreadSanitizer sweep of src/rt/ (scripts/tsan.sh).
# Set PERF=1 for the perf-regression gate (docs/PERFORMANCE.md): the three
# perf benches run with the allocation guard and throughput floor enforced,
# and sim throughput must clear 1.5x the committed pre-optimisation baseline.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${BUILD_DIR:-build-check}

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DSFQ_WERROR=ON
cmake --build "$BUILD" -j"$(nproc)"
ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure

# Traced run: every event line must be valid JSON, zero invariant violations
# (non-zero exit from --check), and the metrics dump must be valid JSON.
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
"$BUILD/examples/sfq_lab" --check --trace "$out/run.jsonl" \
    --metrics "$out/run.metrics.json" examples/configs/single_switch.conf

test -s "$out/run.jsonl"
if command -v python3 >/dev/null; then
  python3 - "$out/run.jsonl" "$out/run.metrics.json" <<'EOF'
import json, sys
n = 0
with open(sys.argv[1]) as f:
    for line in f:
        json.loads(line)
        n += 1
assert n > 0, "empty trace"
m = json.load(open(sys.argv[2]))
assert "flow.voice.delay" in m["histograms"], m["histograms"].keys()
assert "sched.drops.buffer_limit" in m["counters"]
print(f"trace OK: {n} JSONL lines, metrics OK: "
      f"{len(m['counters'])} counters, {len(m['histograms'])} histograms")
EOF
else
  echo "python3 not found - skipping JSONL parse check"
fi

# Faulted run: link outage, brown-out, random loss, and flow churn on a
# pushout-policy port. All losses must surface as counted drops; the online
# invariant checker must stay clean (non-zero exit otherwise).
"$BUILD/examples/sfq_lab" --check examples/configs/faulty_link.conf \
    > "$out/faulty.txt"
grep -q "drops by cause:" "$out/faulty.txt"
echo "fault gate OK: $(grep 'drops by cause:' "$out/faulty.txt" | head -1)"

# Chaos gate: a fixed seed block through the differential sim checks
# (determinism, invariants, Theorem-1/2 oracles) plus live-engine
# capture->replay seeds, including fault-injected rt seeds (dispatcher
# pauses + clock jumps/skews + overload burst; the engine must self-heal
# and keep the ledger conserved — docs/ROBUSTNESS.md). A failure writes the
# minimized repro .conf to $out and names the seed to replay.
"$BUILD/examples/sfq_chaos" run --seeds 64 --rt 8 --rt-faults 8 --out "$out"
echo "chaos gate OK"

if [[ "${PERF:-0}" == "1" ]]; then
  # Perf gate: zero steady-state heap allocations on the SFQ hot path, a
  # packets/s floor, and >= 1.5x the committed pre-PR baseline
  # (bench/baselines/). Benches are built in this Release tree.
  baseline=""
  if command -v python3 >/dev/null && \
     [[ -f bench/baselines/BENCH_sim_throughput.baseline.json ]]; then
    baseline=$(python3 -c '
import json
recs = json.load(open("bench/baselines/BENCH_sim_throughput.baseline.json"))
print(next(r["value"] for r in recs
           if r["scenario"] == "SFQ/4"
           and r["metric"] == "steady_pkts_per_sec"))')
  fi
  export SFQ_PERF_GATE=1
  export BENCH_DIR="$out"
  [[ -n "$baseline" ]] && export SFQ_PERF_BASELINE_PPS="$baseline"
  "$BUILD/bench/bench_sim_throughput" --benchmark_filter=NONE
  "$BUILD/bench/bench_scheduler_perf" --benchmark_filter=NONE
  "$BUILD/bench/bench_rt_engine"
  echo "perf gate OK"
fi

if [[ "${SANITIZE:-0}" == "1" ]]; then
  scripts/sanitize.sh
fi

if [[ "${TSAN:-0}" == "1" ]]; then
  scripts/tsan.sh
fi

echo "check.sh: all gates passed"
