#include "rt/fault_clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace sfq::rt {
namespace {

TEST(FaultClock, NoPlanIsPassthrough) {
  FaultClock c;
  EXPECT_FALSE(c.has_faults());
  const Time a = c.now();
  const Time b = c.now();
  EXPECT_GE(b, a);
  // Transform with no plan is the identity.
  EXPECT_DOUBLE_EQ(c.transform(1.25), 1.25);
}

TEST(FaultClock, ForwardJumpShiftsLaterReadings) {
  FaultClock c;
  RtFaultPlan plan;
  plan.jumps.push_back({0.5, 2.0});
  c.set_plan(plan);
  EXPECT_TRUE(c.has_faults());
  EXPECT_DOUBLE_EQ(c.transform(0.25), 0.25);   // before the jump
  EXPECT_DOUBLE_EQ(c.transform(0.5), 2.5);     // at the jump
  EXPECT_DOUBLE_EQ(c.transform(1.0), 3.0);     // after
}

TEST(FaultClock, SkewStretchesOnlyTheWindow) {
  FaultClock c;
  RtFaultPlan plan;
  plan.skews.push_back({1.0, 2.0, 3.0});  // 3x rate inside [1, 2)
  c.set_plan(plan);
  EXPECT_DOUBLE_EQ(c.transform(0.5), 0.5);
  EXPECT_DOUBLE_EQ(c.transform(1.5), 1.5 + 0.5 * 2.0);  // half window at +2x
  EXPECT_DOUBLE_EQ(c.transform(2.0), 2.0 + 1.0 * 2.0);  // full window
  EXPECT_DOUBLE_EQ(c.transform(3.0), 3.0 + 1.0 * 2.0);  // shift persists
}

TEST(FaultClock, SlowSkewCompressesTheWindow) {
  FaultClock c;
  RtFaultPlan plan;
  plan.skews.push_back({0.0, 4.0, 0.5});  // half rate inside [0, 4)
  c.set_plan(plan);
  EXPECT_DOUBLE_EQ(c.transform(2.0), 1.0);
  EXPECT_DOUBLE_EQ(c.transform(4.0), 2.0);
  EXPECT_DOUBLE_EQ(c.transform(6.0), 4.0);
}

TEST(FaultClock, JumpsAndSkewsCompose) {
  FaultClock c;
  RtFaultPlan plan;
  plan.jumps.push_back({1.0, 0.25});
  plan.skews.push_back({0.0, 2.0, 2.0});
  c.set_plan(plan);
  // raw 1.5: skew adds 1.5, jump adds 0.25.
  EXPECT_DOUBLE_EQ(c.transform(1.5), 1.5 + 1.5 + 0.25);
}

TEST(FaultClock, BackwardJumpIsClampedMonotone) {
  FaultClock c;
  RtFaultPlan plan;
  // A large backward step very early: every raw reading afterwards maps
  // below zero until raw catches up — the live clock must freeze, not
  // regress.
  plan.jumps.push_back({0.0, -3600.0});
  c.set_plan(plan);
  Time prev = c.now();
  for (int i = 0; i < 1000; ++i) {
    const Time t = c.now();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(FaultClock, MonotoneUnderRealJumpTiming) {
  FaultClock c;
  RtFaultPlan plan;
  plan.jumps.push_back({1e-4, -5e-4});  // backward step shortly after start
  plan.jumps.push_back({2e-4, 1e-3});   // then a forward step
  c.set_plan(plan);
  Time prev = c.now();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const Time t = c.now();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(FaultClock, RawAxisUnaffectedByPlan) {
  FaultClock c;
  RtFaultPlan plan;
  plan.jumps.push_back({0.0, 100.0});
  c.set_plan(plan);
  // raw_now() ignores the plan entirely; it trails now() by the jump.
  EXPECT_LT(c.raw_now(), 1.0);
  EXPECT_GE(c.now(), 100.0);
}

TEST(FaultClock, PausesSortedBySetPlan) {
  FaultClock c;
  RtFaultPlan plan;
  plan.pauses.push_back({2.0, 0.1});
  plan.pauses.push_back({1.0, 0.2});
  c.set_plan(plan);
  ASSERT_EQ(c.plan().pauses.size(), 2u);
  EXPECT_DOUBLE_EQ(c.plan().pauses[0].at, 1.0);
  EXPECT_DOUBLE_EQ(c.plan().pauses[1].at, 2.0);
  // Pauses alone do not perturb the clock reading.
  EXPECT_FALSE(c.has_faults());
}

}  // namespace
}  // namespace sfq::rt
