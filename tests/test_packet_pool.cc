#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/packet_pool.h"
#include "core/scheduler.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

TEST(PacketPool, AcquireReleaseRecyclesSlots) {
  PacketPool pool;
  const uint32_t a = pool.acquire(mk(0, 1, 10.0));
  const uint32_t b = pool.acquire(mk(0, 2, 20.0));
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(pool.slots(), 2u);
  pool.release(a);
  const uint32_t c = pool.acquire(mk(1, 3, 30.0));
  EXPECT_EQ(c, a);  // LIFO free-list reuses the released slot
  EXPECT_EQ(pool.slots(), 2u);
  EXPECT_DOUBLE_EQ(pool.packet(c).length_bits, 30.0);
  EXPECT_EQ(pool.packet(b).seq, 2u);
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, LinksResetOnAcquire) {
  PacketPool pool;
  const uint32_t a = pool.acquire(mk(0, 1, 1.0));
  const uint32_t b = pool.acquire(mk(0, 2, 1.0));
  pool.set_next(a, b);
  pool.set_prev(b, a);
  pool.release(b);
  pool.release(a);
  const uint32_t c = pool.acquire(mk(0, 3, 1.0));
  EXPECT_EQ(pool.prev(c), PacketPool::kNil);
  EXPECT_EQ(pool.next(c), PacketPool::kNil);
}

TEST(PerFlowQueues, FifoPerFlowAcrossSharedSlab) {
  PerFlowQueues q;
  q.push(mk(0, 1, 10.0));
  q.push(mk(1, 1, 20.0));
  q.push(mk(0, 2, 30.0));
  q.push(mk(1, 2, 40.0));
  EXPECT_EQ(q.packets(), 4u);
  EXPECT_EQ(q.pop(0).seq, 1u);
  EXPECT_EQ(q.pop(1).seq, 1u);
  EXPECT_EQ(q.pop(0).seq, 2u);
  EXPECT_EQ(q.pop(1).seq, 2u);
  EXPECT_EQ(q.packets(), 0u);
}

TEST(PerFlowQueues, BitsAccountingAcrossInterleavedOps) {
  PerFlowQueues q;
  q.push(mk(0, 1, 100.0));
  q.push(mk(0, 2, 200.0));
  q.push(mk(0, 3, 300.0));
  q.push(mk(1, 1, 50.0));
  EXPECT_DOUBLE_EQ(q.bits(0), 600.0);
  EXPECT_DOUBLE_EQ(q.bits(1), 50.0);

  EXPECT_EQ(q.pop(0).seq, 1u);  // head
  EXPECT_DOUBLE_EQ(q.bits(0), 500.0);
  EXPECT_EQ(q.pop_back(0).seq, 3u);  // tail (pushout victim)
  EXPECT_DOUBLE_EQ(q.bits(0), 200.0);
  EXPECT_EQ(q.flow_packets(0), 1u);

  q.push(mk(0, 4, 25.0));
  EXPECT_DOUBLE_EQ(q.bits(0), 225.0);

  std::vector<Packet> drained = q.drain(0);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].seq, 2u);  // oldest first
  EXPECT_EQ(drained[1].seq, 4u);
  EXPECT_DOUBLE_EQ(q.bits(0), 0.0);
  EXPECT_EQ(q.packets(), 1u);  // flow 1 untouched
  EXPECT_DOUBLE_EQ(q.bits(1), 50.0);
}

// The incremental bits counter would accumulate floating-point residue over
// long runs (bits += x; bits -= x leaves ~1 ulp each cycle with mixed
// magnitudes); PerFlowQueues resets it to exactly 0.0 whenever a flow
// empties, so the server's longest-queue scan never sees ghost backlog.
TEST(PerFlowQueues, RoundingResidueResetsWhenFlowEmpties) {
  PerFlowQueues q;
  // 0.1 is not representable in binary; repeated add/sub of mixed sizes
  // builds residue unless the empty transition snaps the counter to zero.
  for (int round = 0; round < 1000; ++round) {
    q.push(mk(0, 1, 0.1));
    q.push(mk(0, 2, 1e9));
    q.push(mk(0, 3, 0.3));
    q.pop(0);
    q.pop_back(0);
    q.pop(0);
    ASSERT_EQ(q.flow_packets(0), 0u);
    ASSERT_EQ(q.bits(0), 0.0) << "residue after round " << round;
  }
}

TEST(PerFlowQueues, PopBackEmptiesSingletonFlow) {
  PerFlowQueues q;
  q.push(mk(2, 1, 7.0));
  Packet p = q.pop_back(2);
  EXPECT_EQ(p.seq, 1u);
  EXPECT_TRUE(q.flow_empty(2));
  EXPECT_DOUBLE_EQ(q.bits(2), 0.0);
  q.push(mk(2, 2, 8.0));  // flow is still usable after emptying via the tail
  EXPECT_EQ(q.pop(2).seq, 2u);
}

TEST(PerFlowQueues, SlabStopsGrowingOnceWarm) {
  PerFlowQueues q;
  for (int i = 0; i < 32; ++i) q.push(mk(i % 4, i, 100.0));
  while (!q.flow_empty(0)) q.pop(0);
  const std::size_t warm = q.pool_slots();
  std::mt19937_64 rng(5);
  std::size_t backlog[4] = {0, q.flow_packets(1), q.flow_packets(2),
                            q.flow_packets(3)};
  for (int i = 0; i < 10000; ++i) {
    const FlowId f = static_cast<FlowId>(rng() % 4);
    if (rng() % 2 == 0 && backlog[f] < 8) {
      q.push(mk(f, i, 100.0));
      ++backlog[f];
    } else if (backlog[f] > 0) {
      if (rng() % 2 == 0)
        q.pop(f);
      else
        q.pop_back(f);
      --backlog[f];
    }
  }
  EXPECT_EQ(q.pool_slots(), warm);  // backlog never exceeded the high-water
}

}  // namespace
}  // namespace sfq
