// Tests for the hot-path telemetry plane (src/obs/telemetry/):
// histogram bucket math, concurrent recording consistency, exposition
// formats, the HTTP stats endpoint, and the MetricsRegistry bridge.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry/exposition.h"
#include "obs/telemetry/histogram.h"
#include "obs/telemetry/metric_ids.h"
#include "obs/telemetry/profile.h"
#include "obs/telemetry/registry_bridge.h"
#include "obs/telemetry/stats_server.h"
#include "obs/telemetry/telemetry.h"

namespace tel = sfq::obs::telemetry;

// --- histogram bucket layout ------------------------------------------------

TEST(TelemetryHistogram, IndexRoundTripsAcrossTheWholeRange) {
  // Every probe value must land in a bucket whose [lo, hi) contains it.
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 200; ++v) probes.push_back(v);
  for (uint64_t v = 256; v != 0 && v < (1ull << 63); v = v * 3 + 7)
    probes.push_back(v);
  probes.push_back(~0ull);
  for (uint64_t v : probes) {
    const std::size_t i = tel::hist_index(v);
    ASSERT_LT(i, tel::kHistBuckets) << v;
    EXPECT_LE(tel::hist_bucket_lo(i), v) << v;
    // The top bucket's exclusive edge saturates at uint64 max, so ~0ull
    // itself is covered by >= there; everywhere else the edge is strict.
    if (tel::hist_bucket_hi(i) == ~0ull)
      EXPECT_GE(tel::hist_bucket_hi(i), v) << v;
    else
      EXPECT_GT(tel::hist_bucket_hi(i), v) << v;
  }
}

TEST(TelemetryHistogram, BucketsTileWithoutGapsOrOverlap) {
  for (std::size_t i = 0; i + 1 < tel::kHistBuckets; ++i) {
    ASSERT_EQ(tel::hist_bucket_hi(i), tel::hist_bucket_lo(i + 1)) << i;
  }
  EXPECT_EQ(tel::hist_bucket_lo(0), 0u);
  EXPECT_EQ(tel::hist_bucket_hi(tel::kHistBuckets - 1), ~0ull);
}

TEST(TelemetryHistogram, RelativeErrorBounded) {
  // Log-linear with 32 sub-buckets per octave: width/lo <= 2/kSubBuckets.
  for (uint64_t v = tel::kSubBuckets; v < (1ull << 40); v = v * 5 / 3 + 1) {
    const std::size_t i = tel::hist_index(v);
    const double lo = static_cast<double>(tel::hist_bucket_lo(i));
    const double hi = static_cast<double>(tel::hist_bucket_hi(i));
    EXPECT_LE((hi - lo) / lo, 2.0 / tel::kSubBuckets + 1e-12) << v;
  }
}

TEST(TelemetryHistogram, ExactBelowSubBucketCount) {
  tel::LockFreeHistogram h;
  for (uint64_t v = 0; v < tel::kSubBuckets; ++v) h.record(v);
  const tel::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, tel::kSubBuckets);
  EXPECT_EQ(s.min_ns(), 0u);
  EXPECT_EQ(s.max_ns(), tel::kSubBuckets - 1);
  // Exact region: the median of 0..63 interpolates inside one-wide buckets.
  EXPECT_NEAR(s.quantile_ns(0.5), 31.0, 1.5);
}

TEST(TelemetryHistogram, QuantilesOrderedAndClamped) {
  tel::LockFreeHistogram h;
  h.record_seconds(1e-6);
  h.record_seconds(10e-6);
  h.record_seconds(100e-6);
  h.record_seconds(5.0);  // outlier
  const tel::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  double prev = -1.0;
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double v = s.quantile_ns(q);
    EXPECT_GE(v, prev) << q;
    prev = v;
  }
  // q=1 lands in the outlier's bucket: finite edge, ~3% of 5s, never the
  // huge extrapolation an unbounded overflow bucket would produce.
  EXPECT_NEAR(s.quantile_s(1.0), 5.0, 0.2);
  EXPECT_NEAR(s.quantile_s(0.0), 1e-6, 0.05e-6);
}

TEST(TelemetryHistogram, ToNanosClampsAndSaturates) {
  EXPECT_EQ(tel::LockFreeHistogram::to_nanos(-1.0), 0u);
  EXPECT_EQ(tel::LockFreeHistogram::to_nanos(0.0), 0u);
  EXPECT_EQ(tel::LockFreeHistogram::to_nanos(1e-9), 1u);
  EXPECT_EQ(tel::LockFreeHistogram::to_nanos(1.5), 1500000000u);
  EXPECT_GT(tel::LockFreeHistogram::to_nanos(1e300), (1ull << 62));
}

TEST(TelemetryHistogram, MergeSumsBuckets) {
  tel::LockFreeHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(1000);
  for (int i = 0; i < 50; ++i) b.record(2000000);
  tel::HistogramSnapshot s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.count, 150u);
  // sum_ns is reconstructed from bucket midpoints at snapshot time — the
  // record path keeps no online sum — so it carries the bucket quantization
  // error, bounded by 2/kSubBuckets relative.
  const double exact = 100.0 * 1000 + 50.0 * 2000000;
  EXPECT_NEAR(static_cast<double>(s.sum_ns), exact,
              exact * 2.0 / static_cast<double>(tel::kSubBuckets));
  EXPECT_EQ(s.cumulative_below(10000), 100u);
}

TEST(TelemetryHistogram, SumExactForSubBucketValues) {
  // Values below kSubBuckets land in exact one-nanosecond buckets, so the
  // reconstructed sum has no quantization error at all.
  tel::LockFreeHistogram h;
  for (uint64_t v = 0; v < tel::kSubBuckets; ++v) h.record(v);
  const tel::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, tel::kSubBuckets);
  EXPECT_EQ(s.sum_ns, tel::kSubBuckets * (tel::kSubBuckets - 1) / 2);
}

// --- concurrent plane consistency -------------------------------------------

TEST(TelemetryConcurrent, CountersMonotoneAndHistogramsUntorn) {
  tel::Telemetry plane;
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 200000;
  std::atomic<bool> go{false}, done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    tel::Telemetry::Writer wr = plane.writer(0);
    threads.emplace_back([&, wr]() mutable {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        wr.inc(tel::CounterId::kTransmitted);
        wr.inc(tel::CounterId::kTxBits, 8000);
        plane.record(tel::HistId::kQueueDelay, 1000 + (i & 1023));
      }
    });
  }
  // Reader races the writers: every snapshot must be internally consistent
  // (counter never below the previous read; histogram count == bucket sum,
  // which snapshot() guarantees by construction — verify it holds).
  std::thread reader([&] {
    uint64_t prev_tx = 0, prev_hist = 0;
    while (!done.load(std::memory_order_acquire)) {
      const tel::TelemetrySnapshot s = plane.snapshot();
      const uint64_t tx = s.counter_total(tel::CounterId::kTransmitted);
      ASSERT_GE(tx, prev_tx);
      prev_tx = tx;
      const tel::HistogramSnapshot h =
          s.hist_total(tel::HistId::kQueueDelay);
      uint64_t bucket_sum = 0;
      for (uint64_t c : h.counts) bucket_sum += c;
      ASSERT_EQ(h.count, bucket_sum);
      ASSERT_GE(h.count, prev_hist);
      prev_hist = h.count;
    }
  });
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const tel::TelemetrySnapshot s = plane.snapshot();
  EXPECT_EQ(s.counter_total(tel::CounterId::kTransmitted),
            kWriters * kPerWriter);
  EXPECT_EQ(s.counter_total(tel::CounterId::kTxBits),
            kWriters * kPerWriter * 8000);
  EXPECT_EQ(s.hist_total(tel::HistId::kQueueDelay).count,
            kWriters * kPerWriter);
}

TEST(TelemetryPlane, ShardsAreIndependentLabelDimensions) {
  tel::Telemetry plane({.shards = 3});
  tel::Telemetry::Writer w0 = plane.writer(0);
  tel::Telemetry::Writer w2 = plane.writer(2);
  w0.inc(tel::CounterId::kAccepted, 5);
  w2.inc(tel::CounterId::kAccepted, 7);
  w2.drop(sfq::obs::DropCause::kPushout);
  plane.record(tel::HistId::kServiceLag, 500, /*shard=*/2);
  plane.set_gauge(tel::GaugeId::kBacklogPackets, 9.0, /*shard=*/1);

  const tel::TelemetrySnapshot s = plane.snapshot();
  EXPECT_EQ(s.counter(tel::CounterId::kAccepted, 0), 5u);
  EXPECT_EQ(s.counter(tel::CounterId::kAccepted, 1), 0u);
  EXPECT_EQ(s.counter(tel::CounterId::kAccepted, 2), 7u);
  EXPECT_EQ(s.counter_total(tel::CounterId::kAccepted), 12u);
  EXPECT_EQ(s.counter(tel::CounterId::kDropPushout, 2), 1u);
  EXPECT_EQ(s.drops_total(2), 1u);
  EXPECT_EQ(s.hist(tel::HistId::kServiceLag, 2).count, 1u);
  EXPECT_EQ(s.hist(tel::HistId::kServiceLag, 0).count, 0u);
  EXPECT_EQ(s.gauge(tel::GaugeId::kBacklogPackets, 1), 9.0);
  EXPECT_THROW(plane.writer(3), std::out_of_range);
}

// --- stage profiler ----------------------------------------------------------

TEST(TelemetryProfiler, DisabledScopesRecordNothing) {
  tel::Telemetry plane;
  tel::StageProfiler prof(plane);
  {
    tel::StageProfiler::Scope s(&prof, tel::HistId::kStageDrain);
  }
  {
    tel::StageProfiler::Scope s(nullptr, tel::HistId::kStageDrain);
  }
  EXPECT_EQ(plane.snapshot().hist_total(tel::HistId::kStageDrain).count, 0u);

  prof.enable(true);
  {
    tel::StageProfiler::Scope s(&prof, tel::HistId::kStageDrain);
  }
  const tel::HistogramSnapshot h =
      plane.snapshot().hist_total(tel::HistId::kStageDrain);
  EXPECT_EQ(h.count, 1u);
}

// --- exposition --------------------------------------------------------------

TEST(TelemetryExposition, PrometheusCarriesShardLabelsAndBuckets) {
  tel::Telemetry plane({.shards = 2});
  tel::Telemetry::Writer w1 = plane.writer(1);
  w1.inc(tel::CounterId::kTransmitted, 42);
  plane.record_seconds(tel::HistId::kQueueDelay, 0.005, /*shard=*/1);
  plane.set_gauge(tel::GaugeId::kFairnessGap, 0.25, /*shard=*/0);

  const std::string text = tel::to_prometheus(plane.snapshot());
  EXPECT_NE(text.find("# TYPE sfq_transmitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sfq_transmitted_total{shard=\"1\"} 42"),
            std::string::npos);
  EXPECT_NE(text.find("sfq_transmitted_total{shard=\"0\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("sfq_fairness_gap_seconds{shard=\"0\"} 0.25"),
            std::string::npos);
  // 5ms sample: cumulative buckets below 1ms exclude it, the +Inf edge and
  // the count include it.
  EXPECT_NE(
      text.find("sfq_queue_delay_seconds_bucket{shard=\"1\",le=\"0.001\"} 0"),
      std::string::npos);
  EXPECT_NE(
      text.find("sfq_queue_delay_seconds_bucket{shard=\"1\",le=\"+Inf\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("sfq_queue_delay_seconds_count{shard=\"1\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(TelemetryExposition, JsonNamesEveryCounter) {
  tel::Telemetry plane;
  tel::Telemetry::Writer w = plane.writer(0);
  w.inc(tel::CounterId::kAccepted, 3);
  const std::string js = tel::to_json(plane.snapshot());
  for (std::size_t c = 0; c < tel::kCounterCount; ++c) {
    const std::string key =
        std::string("\"") + tel::name(static_cast<tel::CounterId>(c)) + "\"";
    EXPECT_NE(js.find(key), std::string::npos) << key;
  }
  EXPECT_NE(js.find("\"rt.accepted\":{\"total\":3"), std::string::npos);
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
}

// --- HTTP stats endpoint ------------------------------------------------------

namespace {

std::string http_get(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

}  // namespace

TEST(TelemetryStatsServer, ServesPrometheusAndJson) {
  tel::StatsServer server;
  server.start(/*port=*/0);  // ephemeral
  ASSERT_GT(server.port(), 0);
  server.publish("# prom payload\n", "{\"json\":true}");

  const std::string prom = http_get(server.port(), "/metrics");
  EXPECT_NE(prom.find("200 OK"), std::string::npos);
  EXPECT_NE(prom.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(prom.find("# prom payload"), std::string::npos);

  const std::string js = http_get(server.port(), "/metrics.json");
  EXPECT_NE(js.find("application/json"), std::string::npos);
  EXPECT_NE(js.find("{\"json\":true}"), std::string::npos);

  const std::string miss = http_get(server.port(), "/nope");
  EXPECT_NE(miss.find("404"), std::string::npos);

  // publish() swaps payloads atomically for later requests.
  server.publish("v2\n", "{}");
  EXPECT_NE(http_get(server.port(), "/metrics").find("v2"),
            std::string::npos);
  EXPECT_GE(server.requests_served(), 4u);
  server.stop();
}

// --- registry bridge ----------------------------------------------------------

TEST(TelemetryBridge, AdvancesCountersIdempotently) {
  tel::Telemetry plane;
  tel::Telemetry::Writer w = plane.writer(0);
  sfq::obs::MetricsRegistry reg;

  w.inc(tel::CounterId::kTransmitted, 10);
  w.drop(sfq::obs::DropCause::kBufferLimit);
  plane.record_seconds(tel::HistId::kQueueDelay, 0.002);
  plane.set_gauge(tel::GaugeId::kBacklogPackets, 4.0);
  tel::bridge_to_registry(plane.snapshot(), reg);
  EXPECT_EQ(reg.counter("rt.transmitted").value(), 10u);
  EXPECT_EQ(reg.counter("sched.drops.buffer_limit").value(), 1u);
  EXPECT_EQ(reg.gauge("rt.backlog_packets").value(), 4.0);
  EXPECT_NEAR(reg.gauge("rt.queue_delay.p50").value(), 0.002, 0.0001);
  EXPECT_EQ(reg.gauge("rt.queue_delay.count").value(), 1.0);

  // Re-bridging a newer snapshot adds only the delta.
  w.inc(tel::CounterId::kTransmitted, 5);
  tel::bridge_to_registry(plane.snapshot(), reg);
  tel::bridge_to_registry(plane.snapshot(), reg);  // same snapshot state: no-op
  EXPECT_EQ(reg.counter("rt.transmitted").value(), 15u);
}
