#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace sfq::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(3.0, [&] { order.push_back(3); });
  while (q.run_one() != kTimeInfinity) {}
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(1.0, [&, i] { order.push_back(i); });
  while (q.run_one() != kTimeInfinity) {}
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> order;
  EventId a = q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.cancel(a);
  while (q.run_one() != kTimeInfinity) {}
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  EventId a = q.schedule(1.0, [] {});
  q.cancel(a);
  q.cancel(a);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId a = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

// Regression (ISSUE 5): cancelling an id that already fired must be a no-op.
// The old implementation kept no record of fired ids, so a late cancel
// decremented the live count again and empty()/size() lied — a simulation
// could terminate with events still pending.
TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  int fired = 0;
  EventId a = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  EXPECT_DOUBLE_EQ(q.run_one(), 1.0);  // fires a
  q.cancel(a);                         // stale id: must not touch the queue
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  EXPECT_DOUBLE_EQ(q.run_one(), 2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

// A stale id whose slot has been reused by a newer event must not cancel the
// newer event (generation tags, not bare slot indices).
TEST(EventQueue, StaleCancelDoesNotHitReusedSlot) {
  EventQueue q;
  int fired = 0;
  EventId a = q.schedule(1.0, [&] { ++fired; });
  q.run_one();  // a's slot returns to the free-list
  EventId b = q.schedule(2.0, [&] { ++fired; });
  EXPECT_NE(a, b);
  q.cancel(a);  // must not cancel b even though the slot matches
  EXPECT_EQ(q.size(), 1u);
  q.run_one();
  EXPECT_EQ(fired, 2);
}

// Regression (ISSUE 5): cancellation must destroy the closure's captured
// state eagerly, not retain it until the entry would have drifted to the
// heap top — under heavy churn lazy retention is unbounded memory.
TEST(EventQueue, CancelReleasesCapturedStateEagerly) {
  EventQueue q;
  auto shared = std::make_shared<int>(42);
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i)
    ids.push_back(q.schedule(1000.0 + i, [shared] { (void)*shared; }));
  q.schedule(1.0, [] {});  // keeps the queue busy below the cancelled block
  EXPECT_EQ(shared.use_count(), 65);
  for (EventId id : ids) q.cancel(id);
  // All 64 captured copies destroyed immediately; only ours remains.
  EXPECT_EQ(shared.use_count(), 1);
  EXPECT_EQ(q.size(), 1u);
}

// Steady-state slab behaviour: a fire/reschedule cycle reuses freed slots
// instead of growing the slab (the allocation-free hot path's foundation).
TEST(EventQueue, SlabStopsGrowingOnceWarm) {
  EventQueue q;
  for (int i = 0; i < 8; ++i) q.schedule(1.0 + i, [] {});
  const std::size_t warm = q.slab_slots();
  for (int i = 0; i < 1000; ++i) {
    q.run_one();
    q.schedule(100.0 + i, [] {});
  }
  EXPECT_EQ(q.slab_slots(), warm);
}

// Typed events dispatch to their EventTarget with the payload intact.
struct RecordingTarget : EventTarget {
  std::vector<Event> seen;
  std::vector<Time> times;
  void on_event(Event& ev, Time now) override {
    seen.push_back(ev);
    times.push_back(now);
  }
};

TEST(EventQueue, TypedEventsCarryPayloadToTarget) {
  EventQueue q;
  RecordingTarget t;
  Packet p;
  p.flow = 3;
  p.seq = 17;
  p.length_bits = 1000.0;
  q.schedule_packet(1.0, EventOp::kServiceComplete, &t, p, /*t0=*/0.25,
                    /*aux=*/2);
  q.schedule_tick(2.0, &t, 512.0);
  q.schedule_flow(3.0, EventOp::kChurnLeave, &t, /*flow=*/9);
  while (q.run_one() != kTimeInfinity) {}
  ASSERT_EQ(t.seen.size(), 3u);
  EXPECT_EQ(t.seen[0].op, EventOp::kServiceComplete);
  EXPECT_EQ(t.seen[0].packet.flow, 3u);
  EXPECT_EQ(t.seen[0].packet.seq, 17u);
  EXPECT_DOUBLE_EQ(t.seen[0].t0, 0.25);
  EXPECT_EQ(t.seen[0].aux, 2u);
  EXPECT_EQ(t.seen[1].op, EventOp::kSourceTick);
  EXPECT_DOUBLE_EQ(t.seen[1].bits, 512.0);
  EXPECT_EQ(t.seen[2].op, EventOp::kChurnLeave);
  EXPECT_EQ(t.seen[2].flow, 9u);
  EXPECT_EQ(t.times, (std::vector<Time>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, TypedEventsCancelLikeCallbacks) {
  EventQueue q;
  RecordingTarget t;
  Packet p;
  p.flow = 1;
  EventId a = q.schedule_packet(1.0, EventOp::kArrival, &t, p);
  q.schedule_tick(2.0, &t, 1.0);
  q.cancel(a);
  while (q.run_one() != kTimeInfinity) {}
  ASSERT_EQ(t.seen.size(), 1u);
  EXPECT_EQ(t.seen[0].op, EventOp::kSourceTick);
}

// Randomized schedule/cancel/pop fuzz against a naive reference queue: the
// slab + indexed-heap implementation must agree with an O(n) linear scan on
// fire order, sizes, and which cancels take effect.
TEST(EventQueue, FuzzAgainstNaiveReference) {
  struct RefEvent {
    Time when;
    uint64_t seq;    // schedule order, breaks time ties
    int tag;
    bool alive;
  };
  std::mt19937_64 rng(20260806);
  std::uniform_real_distribution<double> when_dist(0.0, 100.0);
  for (int round = 0; round < 10; ++round) {
    EventQueue q;
    std::vector<RefEvent> ref;
    std::vector<std::pair<EventId, std::size_t>> live;  // queue id -> ref idx
    std::vector<int> got, want;
    uint64_t seq = 0;
    int next_tag = 0;
    for (int step = 0; step < 2000; ++step) {
      const uint64_t r = rng() % 100;
      if (r < 50 || live.empty()) {
        const Time t = when_dist(rng);
        const int tag = next_tag++;
        EventId id = q.schedule(t, [tag, &got] { got.push_back(tag); });
        ref.push_back(RefEvent{t, seq++, tag, true});
        live.emplace_back(id, ref.size() - 1);
      } else if (r < 70) {
        // Cancel a random live event (sometimes one cancelled before —
        // the double-cancel must be a no-op).
        const std::size_t pick = rng() % live.size();
        q.cancel(live[pick].first);
        ref[live[pick].second].alive = false;
        if (rng() % 4 == 0) q.cancel(live[pick].first);
        live.erase(live.begin() + pick);
      } else {
        // Pop: the reference fires the earliest (when, seq) live event.
        const Time fired_at = q.run_one();
        std::size_t best = ref.size();
        for (std::size_t i = 0; i < ref.size(); ++i)
          if (ref[i].alive && (best == ref.size() ||
                               ref[i].when < ref[best].when ||
                               (ref[i].when == ref[best].when &&
                                ref[i].seq < ref[best].seq)))
            best = i;
        if (best == ref.size()) {
          EXPECT_EQ(fired_at, kTimeInfinity);
        } else {
          EXPECT_DOUBLE_EQ(fired_at, ref[best].when);
          want.push_back(ref[best].tag);
          ref[best].alive = false;
          live.erase(std::find_if(live.begin(), live.end(),
                                  [&](auto& e) { return e.second == best; }));
        }
      }
      const std::size_t ref_live =
          static_cast<std::size_t>(std::count_if(
              ref.begin(), ref.end(), [](auto& e) { return e.alive; }));
      ASSERT_EQ(q.size(), ref_live) << "step " << step;
    }
    EXPECT_EQ(got, want);
  }
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = -1.0;
  sim.at(1.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 1.5);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(3.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);  // events at exactly the deadline run
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<Time> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.after(1.0, chain);
  };
  sim.at(0.5, chain);
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{0.5, 1.5, 2.5, 3.5}));
}

TEST(Simulator, PastEventThrows) {
  Simulator sim;
  sim.at(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(0.5, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace sfq::sim
