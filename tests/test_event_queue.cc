#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace sfq::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(3.0, [&] { order.push_back(3); });
  while (q.run_one() != kTimeInfinity) {}
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(1.0, [&, i] { order.push_back(i); });
  while (q.run_one() != kTimeInfinity) {}
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> order;
  EventId a = q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.cancel(a);
  while (q.run_one() != kTimeInfinity) {}
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  EventId a = q.schedule(1.0, [] {});
  q.cancel(a);
  q.cancel(a);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId a = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = -1.0;
  sim.at(1.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 1.5);
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(3.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);  // events at exactly the deadline run
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<Time> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.after(1.0, chain);
  };
  sim.at(0.5, chain);
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{0.5, 1.5, 2.5, 3.5}));
}

TEST(Simulator, PastEventThrows) {
  Simulator sim;
  sim.at(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(0.5, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace sfq::sim
