// Coverage for smaller public APIs: the scheduler factory, FlowTable
// aggregates, VBR GoP validation, generalized rates in the hierarchy, and
// Fair Airport regulator monotonicity.
#include <gtest/gtest.h>

#include <memory>

#include "core/flow_table.h"
#include "core/scheduler_factory.h"
#include "sched/drr_scheduler.h"
#include "hier/hsfq_scheduler.h"
#include "sched/fair_airport.h"
#include "sim/simulator.h"
#include "traffic/vbr_video.h"

namespace sfq {
namespace {

TEST(SchedulerFactory, CreatesEveryAdvertisedName) {
  for (const std::string& name : scheduler_names()) {
    SchedulerOptions opts;
    // SFQ-W is the one advertised name with a mandatory option: the tag
    // quantization window has no universal default (it is l_max / C).
    if (name == "SFQ-W") opts.sfq_wheel_quantum = 0.1;
    auto s = make_scheduler(name, opts);
    ASSERT_NE(s, nullptr) << name;
    // Factory name and self-reported name agree up to known aliases.
    if (name == "VC") EXPECT_EQ(s->name(), "VirtualClock");
    else if (name == "EDD") EXPECT_EQ(s->name(), "DelayEDD");
    else if (name == "HSFQ") EXPECT_EQ(s->name(), "H-SFQ");
    else EXPECT_EQ(s->name(), name);
    // Basic lifecycle: register a flow, push/pop one packet.
    FlowId f = s->add_flow(1000.0, 100.0);
    Packet p;
    p.flow = f;
    p.seq = 1;
    p.length_bits = 100.0;
    s->enqueue(std::move(p), 0.0);
    auto out = s->dequeue(0.0);
    ASSERT_TRUE(out) << name;
    s->on_transmit_complete(*out, 0.0);
    EXPECT_TRUE(s->empty()) << name;
  }
}

TEST(SchedulerFactory, UnknownNameThrows) {
  EXPECT_THROW(make_scheduler("Turbo"), std::invalid_argument);
}

TEST(SchedulerFactory, OptionsReachTheSchedulers) {
  SchedulerOptions opts;
  opts.quantum_per_weight = 7.0;
  auto drr = make_scheduler("DRR", opts);
  FlowId f = drr->add_flow(3.0);
  // Quantum = weight * quantum_per_weight = 21 bits (via the DRR accessor).
  auto* d = dynamic_cast<DrrScheduler*>(drr.get());
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->quantum(f), 21.0);
}

TEST(FlowTable, AggregatesAndValidation) {
  FlowTable t;
  EXPECT_THROW(t.add(0.0), std::invalid_argument);
  FlowId a = t.add(100.0, 1000.0, "a");
  FlowId b = t.add(300.0, 2000.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.total_weight(), 400.0);
  EXPECT_DOUBLE_EQ(t.total_max_packet_bits(), 3000.0);
  EXPECT_DOUBLE_EQ(t.sum_other_max_packets(a), 2000.0);
  EXPECT_DOUBLE_EQ(t.sum_other_max_packets(b), 1000.0);
  EXPECT_EQ(t.spec(b).name, "flow1");  // auto-named
}

TEST(MpegVbr, RejectsBadGop) {
  sim::Simulator sim;
  traffic::MpegVbrSource::Params p;
  p.gop = "IXP";
  EXPECT_THROW(
      traffic::MpegVbrSource(sim, 0, [](Packet) {}, p),
      std::invalid_argument);
  p.gop = "";
  EXPECT_THROW(
      traffic::MpegVbrSource(sim, 0, [](Packet) {}, p),
      std::invalid_argument);
}

TEST(MpegVbr, CustomGopChangesMix) {
  sim::Simulator sim;
  traffic::MpegVbrSource::Params p;
  p.gop = "IPPP";
  traffic::MpegVbrSource src(sim, 0, [](Packet) {}, p);
  // 4-frame GoP: I carries 5/(5+2+2+2) of the per-GoP bits.
  const double gop_bits = p.average_rate * 4.0 / p.fps;
  EXPECT_NEAR(src.mean_frame_bits('I'), gop_bits * 5.0 / 11.0, 1e-6);
}

TEST(HsfqGeneralizedRates, PerPacketRateAppliesAtTheLeaf) {
  hier::HsfqScheduler s;
  FlowId f = s.add_flow(1.0);
  FlowId g = s.add_flow(1.0);
  // f's packet carries rate 10 => its next start tag advances by l/10 only.
  Packet p1;
  p1.flow = f;
  p1.seq = 1;
  p1.length_bits = 10.0;
  p1.rate = 10.0;
  s.enqueue(std::move(p1), 0.0);
  Packet p2;
  p2.flow = f;
  p2.seq = 2;
  p2.length_bits = 10.0;
  s.enqueue(std::move(p2), 0.0);
  Packet q;
  q.flow = g;
  q.seq = 1;
  q.length_bits = 10.0;
  s.enqueue(std::move(q), 0.0);

  // Order: f1 (S=0, tie FIFO), g1 (S=0), f2 (S=1 thanks to the boosted rate;
  // without p1.rate it would be S=10 and still after g1 — the observable
  // effect is f2 coming before nothing else here, so check the tags via a
  // second g packet at S=10).
  Packet q2;
  q2.flow = g;
  q2.seq = 2;
  q2.length_bits = 10.0;
  s.enqueue(std::move(q2), 0.0);  // S = 10 (g's F after q1)

  std::vector<std::pair<FlowId, uint64_t>> order;
  while (auto out = s.dequeue(0.0)) {
    order.push_back({out->flow, out->seq});
    s.on_transmit_complete(*out, 0.0);
  }
  EXPECT_EQ(order, (std::vector<std::pair<FlowId, uint64_t>>{
                       {f, 1}, {g, 1}, {f, 2}, {g, 2}}));
}

TEST(FairAirport, RegulatorReleasesKeepArrivalOrderPerFlow) {
  FairAirportScheduler s;
  FlowId f = s.add_flow(10.0);  // l/r = 1 s spacing at l=10
  for (int j = 1; j <= 4; ++j) {
    Packet p;
    p.flow = f;
    p.seq = j;
    p.length_bits = 10.0;
    p.arrival = 0.0;
    s.enqueue(std::move(p), 0.0);
  }
  // Dequeue at widely spaced times so every packet goes through the GSQ;
  // releases must follow arrival order with EAT spacing.
  for (int j = 1; j <= 4; ++j) {
    auto p = s.dequeue(10.0 * j);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->seq, static_cast<uint64_t>(j));
    s.on_transmit_complete(*p, 10.0 * j);
  }
  EXPECT_EQ(s.served_via_gsq(), 4u);
}

}  // namespace
}  // namespace sfq
