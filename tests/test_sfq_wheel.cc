// SFQ-W (SfqCore::kWheel): the timestamp-wheel ready core. Contracts under
// test (docs/PERFORMANCE.md, "The flow-scale core"):
//   * with a quantum below the inter-tag spacing, the wheel reproduces the
//     exact heap schedule packet for packet;
//   * with any quantum, served start tags regress by less than one
//     quantization window and v(t) stays monotone;
//   * per-flow service over a full drain is identical to the heap core
//     (work conservation is not affected by quantization);
//   * flow-id GC: churned ids retire, become reclaimable once v(t) passes
//     their F_prev, recycle through add_flow, and a rejoin cancels the
//     pending retirement;
//   * factory + config surface: "SFQ-W" requires a positive quantum, the
//     wheel requires FIFO tie-break, quantization_window() reports the
//     quantum, and the config layer derives quantum = l_max / C by default.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <vector>

#include "config/experiment.h"
#include "core/scheduler_factory.h"
#include "core/sfq_scheduler.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

SfqScheduler make_wheel(double quantum, bool gc = false) {
  SfqOptions o;
  o.core = SfqCore::kWheel;
  o.wheel_quantum = quantum;
  o.flow_gc = gc;
  return SfqScheduler(o);
}

uint64_t mix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Random backlogged workload pushed through both cores; returns the two
// dequeue sequences (flow ids in service order).
struct CoreRun {
  std::vector<FlowId> order;
  std::vector<double> start_tags;
  std::vector<double> flow_bits;
};

CoreRun drive(SfqScheduler& s, uint64_t seed, std::size_t flows,
              std::size_t ops) {
  std::vector<FlowId> ids;
  for (std::size_t f = 0; f < flows; ++f)
    ids.push_back(s.add_flow(100.0 * (1 + f % 3), 400.0));
  CoreRun run;
  run.flow_bits.assign(flows, 0.0);
  uint64_t rng = seed;
  uint64_t seq = 1;
  for (std::size_t i = 0; i < ops; ++i) {
    // 2 enqueues : 1 dequeue keeps a growing backlog; drain at the end.
    const FlowId f = ids[mix64(rng) % ids.size()];
    const double bits = 100.0 * (1 + mix64(rng) % 8);
    s.enqueue(mk(f, seq++, bits), 0.0);
    if (i % 2 == 0) {
      std::optional<Packet> p = s.dequeue(0.0);
      if (p) {
        run.order.push_back(p->flow);
        run.start_tags.push_back(p->start_tag);
        run.flow_bits[p->flow] += p->length_bits;
        s.on_transmit_complete(*p, 0.0);
      }
    }
  }
  while (std::optional<Packet> p = s.dequeue(0.0)) {
    run.order.push_back(p->flow);
    run.start_tags.push_back(p->start_tag);
    run.flow_bits[p->flow] += p->length_bits;
    s.on_transmit_complete(*p, 0.0);
  }
  return run;
}

TEST(SfqWheel, TinyQuantumReproducesTheHeapTagSequence) {
  // With one tick far below the smallest tag increment (100 bits / 300 ≈
  // 0.33 vs), quantization cannot merge distinct tags, so the wheel serves
  // the exact same start-tag sequence as the heap and every flow receives
  // identical service. (Within a group of equal tags the two cores may
  // still order packets differently — the heap breaks ties by global
  // arrival order, the wheel by when each flow's head entered the bucket —
  // so per-packet order equality is deliberately not asserted.)
  for (const uint64_t seed : {11ull, 22ull, 33ull}) {
    SfqScheduler heap{SfqOptions{}};
    SfqScheduler wheel = make_wheel(1e-4);
    const CoreRun a = drive(heap, seed, 6, 4000);
    const CoreRun b = drive(wheel, seed, 6, 4000);
    ASSERT_EQ(a.start_tags.size(), b.start_tags.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.start_tags.size(); ++i) {
      // Tolerance, not exact equality: the two cores maintain v(t) through
      // different expressions (assignment vs monotone max), so 1-ulp
      // differences seep into the max(v, F_prev) tag chains.
      ASSERT_NEAR(a.start_tags[i], b.start_tags[i], 1e-9)
          << "seed " << seed << " index " << i;
    }
    ASSERT_EQ(a.flow_bits, b.flow_bits) << "seed " << seed;
  }
}

TEST(SfqWheel, CoarseQuantumKeepsOrderSlackAndServiceExact) {
  // A deliberately coarse quantum: schedules may differ, but (1) served
  // start tags never regress by a full window, (2) total service per flow
  // over the complete drain matches the heap exactly (same packets served).
  const double quantum = 2.0;
  for (const uint64_t seed : {5ull, 6ull}) {
    SfqScheduler heap{SfqOptions{}};
    SfqScheduler wheel = make_wheel(quantum);
    const CoreRun a = drive(heap, seed, 6, 4000);
    const CoreRun b = drive(wheel, seed, 6, 4000);
    double high = 0.0;
    for (const double tag : b.start_tags) {
      EXPECT_GT(tag, high - quantum - 1e-9);
      if (tag > high) high = tag;
    }
    ASSERT_EQ(a.flow_bits, b.flow_bits) << "seed " << seed;
    ASSERT_EQ(a.order.size(), b.order.size());
  }
}

TEST(SfqWheel, VtimeStaysMonotoneAcrossIntraBucketRegressions) {
  SfqScheduler wheel = make_wheel(5.0);
  const FlowId a = wheel.add_flow(100.0, 400.0);
  const FlowId b = wheel.add_flow(100.0, 400.0);
  uint64_t seq = 1;
  double last_v = 0.0;
  for (int i = 0; i < 50; ++i) {
    wheel.enqueue(mk(a, seq++, 400.0), 0.0);
    wheel.enqueue(mk(b, seq++, 100.0), 0.0);
    while (std::optional<Packet> p = wheel.dequeue(0.0)) {
      EXPECT_GE(wheel.vtime(), last_v);
      last_v = wheel.vtime();
      wheel.on_transmit_complete(*p, 0.0);
    }
  }
}

TEST(SfqWheel, ReportsQuantizationWindowAndName) {
  SfqScheduler wheel = make_wheel(0.25);
  EXPECT_EQ(wheel.name(), "SFQ-W");
  EXPECT_DOUBLE_EQ(wheel.quantization_window(), 0.25);
  SfqScheduler heap{SfqOptions{}};
  EXPECT_EQ(heap.name(), "SFQ");
  EXPECT_DOUBLE_EQ(heap.quantization_window(), 0.0);
}

TEST(SfqWheel, RejectsNonFifoTieBreakAndMissingQuantum) {
  SfqOptions bad;
  bad.core = SfqCore::kWheel;
  bad.wheel_quantum = 1.0;
  bad.tie_break = TieBreak::kLowWeightFirst;
  EXPECT_THROW(SfqScheduler{bad}, std::invalid_argument);

  SchedulerOptions so;  // factory: SFQ-W without a quantum is an error
  EXPECT_THROW(make_scheduler("SFQ-W", so), std::invalid_argument);
  so.sfq_wheel_quantum = 0.01;
  const auto sched = make_scheduler("SFQ-W", so);
  EXPECT_EQ(sched->name(), "SFQ-W");
  EXPECT_DOUBLE_EQ(sched->quantization_window(), 0.01);
}

TEST(SfqWheel, GcRecyclesIdsOnceTagSafe) {
  SfqScheduler s = make_wheel(0.5, /*gc=*/true);
  const FlowId keeper = s.add_flow(100.0, 400.0);
  const FlowId churn = s.add_flow(100.0, 400.0);

  // Give the churned flow history: serve one packet so F_prev > 0. Queue a
  // keeper packet before completing it, so the scheduler never goes fully
  // empty (the end-of-busy-period rule would jump v(t) straight to F_prev).
  s.enqueue(mk(churn, 1, 400.0), 0.0);
  std::optional<Packet> p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  s.enqueue(mk(keeper, 2, 400.0), 0.0);
  s.on_transmit_complete(*p, 0.0);
  const double f_prev = s.last_finish_tag(churn);
  ASSERT_GT(f_prev, 0.0);

  s.remove_flow(churn, 0.0);
  EXPECT_EQ(s.gc_pending(), 1u);

  // v(t) has not reached F_prev yet: a new flow must NOT reuse the id.
  ASSERT_LT(s.vtime(), f_prev);
  const FlowId fresh = s.add_flow(100.0, 400.0);
  EXPECT_NE(fresh, churn);
  EXPECT_EQ(s.gc_pending(), 1u);

  // Run the keeper until v(t) passes F_prev, then the next add reclaims.
  uint64_t seq = 10;
  while (s.vtime() < f_prev) {
    s.enqueue(mk(keeper, seq++, 400.0), 0.0);
    p = s.dequeue(0.0);
    ASSERT_TRUE(p);
    s.on_transmit_complete(*p, 0.0);
  }
  const FlowId recycled = s.add_flow(100.0, 400.0);
  EXPECT_EQ(recycled, churn);
  EXPECT_EQ(s.gc_pending(), 0u);

  // The recycled flow starts a fresh tag chain at v(t) — identical to the
  // paper's rejoin rule since F_prev <= v(t) held at reclaim time.
  s.enqueue(mk(recycled, 1, 400.0), 0.0);
  p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_GE(p->start_tag, f_prev);
  EXPECT_DOUBLE_EQ(p->start_tag, s.vtime());
  s.on_transmit_complete(*p, 0.0);
}

TEST(SfqWheel, RejoinCancelsPendingRetirement) {
  SfqScheduler s = make_wheel(0.5, /*gc=*/true);
  s.add_flow(100.0, 400.0);
  const FlowId f = s.add_flow(100.0, 400.0);
  s.remove_flow(f, 0.0);
  EXPECT_EQ(s.gc_pending(), 1u);
  s.rejoin_flow(f, 0.0);  // the sharded engine parks ids this way
  EXPECT_EQ(s.gc_pending(), 0u);
  EXPECT_TRUE(s.flows().active(f));
  // The id must survive subsequent adds (no reclaim happened).
  const FlowId next = s.add_flow(100.0, 400.0);
  EXPECT_NE(next, f);
}

TEST(SfqWheel, RepeatedRemovalIsIdempotent) {
  SfqScheduler s = make_wheel(0.5, /*gc=*/true);
  s.add_flow(100.0, 400.0);
  const FlowId f = s.add_flow(100.0, 400.0);
  s.remove_flow(f, 0.0);
  s.rejoin_flow(f, 0.0);
  s.remove_flow(f, 0.0);  // retire again after a rejoin: exactly one entry
  EXPECT_EQ(s.gc_pending(), 1u);
  const FlowId recycled = s.add_flow(100.0, 400.0);  // F_prev = 0 <= v
  EXPECT_EQ(recycled, f);
  EXPECT_EQ(s.gc_pending(), 0u);
}

TEST(SfqWheel, ConfigDerivesQuantumAndWidensTheFairnessBound) {
  // The config layer: `scheduler SFQ-W` defaults the quantum to l_max / C,
  // an explicit `quantum=` overrides, and run_experiment reports the window
  // and folds 2*window into the fairness bound.
  const std::string text = R"(
scheduler SFQ-W
link rate=1Mbps
duration 3s
flow name=a kind=greedy packet=500B weight=250Kbps
flow name=b kind=greedy packet=250B weight=750Kbps
)";
  std::istringstream in(text);
  config::ExperimentSpec spec = config::ExperimentSpec::parse(in);
  EXPECT_EQ(spec.scheduler, "SFQ-W");
  // l_max = 500 B = 4000 bits over the 1 Mb/s link.
  EXPECT_DOUBLE_EQ(config::sfq_wheel_quantum(spec), 4000.0 / 1e6);

  spec.sfq_quantum = 0.1;
  EXPECT_DOUBLE_EQ(config::sfq_wheel_quantum(spec), 0.1);
  const std::string round = spec.serialize();
  EXPECT_NE(round.find("scheduler SFQ-W quantum="), std::string::npos);
  std::istringstream in2(round);
  EXPECT_DOUBLE_EQ(config::ExperimentSpec::parse(in2).sfq_quantum, 0.1);

  spec.sfq_quantum = 0.0;
  const config::ExperimentResult res = config::run_experiment(spec);
  EXPECT_DOUBLE_EQ(res.quantization_window, 4000.0 / 1e6);
  // Overloaded greedy flows: Theorem 1 + the 2*window slack must hold, and
  // the weighted shares come out as configured.
  EXPECT_LE(res.worst_fairness_ratio, 1.0 + 1e-9);
  ASSERT_EQ(res.flows.size(), 2u);
  EXPECT_NEAR(res.flows[0].throughput, 250e3, 15e3);
  EXPECT_NEAR(res.flows[1].throughput, 750e3, 15e3);
}

TEST(SfqWheel, ConfigRejectsQuantumOnOtherSchedulersAndBadValues) {
  {
    std::istringstream in(std::string(
        "scheduler SFQ quantum=10ms\nlink rate=1Mbps\nduration 1s\n"
        "flow name=a kind=cbr rate=100Kbps packet=500B\n"));
    EXPECT_THROW(config::ExperimentSpec::parse(in), std::invalid_argument);
  }
  {
    std::istringstream in(std::string(
        "scheduler SFQ-W quantum=0s\nlink rate=1Mbps\nduration 1s\n"
        "flow name=a kind=cbr rate=100Kbps packet=500B\n"));
    EXPECT_THROW(config::ExperimentSpec::parse(in), std::invalid_argument);
  }
}

}  // namespace
}  // namespace sfq
