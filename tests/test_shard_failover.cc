// Shard failover (rt/shard/shard_supervisor.h, docs/ROBUSTNESS.md "Shard
// failover"): the SFQ rejoin rule re-anchors a migrated flow's start tag
// against the destination's own record, the conservation identities stay
// exact across a migration under both overload policies, and a killed shard
// is fenced, its flows rehomed onto survivors, cold-restarted and rehomed
// back. Timing-sensitive assertions use bounded waits on the supervisor's
// settlement signals, never raw sleeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/scheduler_factory.h"
#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "rt/engine.h"
#include "rt/shard/shard_router.h"
#include "rt/shard/shard_supervisor.h"
#include "rt/shard/sharded_engine.h"

namespace sfq::rt {
namespace {

constexpr double kBits = 4000.0;

Packet make_packet(FlowId flow, uint64_t seq, double bits = kBits) {
  Packet p{};
  p.flow = flow;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

uint64_t cause(const EngineStats& s, obs::DropCause c) {
  return s.drops[static_cast<std::size_t>(c)];
}

// The migration-extended exact identities (docs/ROBUSTNESS.md): adopted
// backlog enters as migrated_in alongside the flow's own ingress, harvested
// backlog leaves as migrated_out.
void expect_migration_ledger(const EngineStats& s, const std::string& where) {
  const uint64_t pre = cause(s, obs::DropCause::kUnknownFlow) +
                       cause(s, obs::DropCause::kBufferLimit) +
                       cause(s, obs::DropCause::kShed);
  const uint64_t post = cause(s, obs::DropCause::kPushout) +
                        cause(s, obs::DropCause::kFlowRemoved);
  EXPECT_EQ(s.ingress_pushed + s.migrated_in, s.accepted + pre + s.abandoned)
      << where;
  EXPECT_EQ(s.accepted, s.transmitted + s.backlog + post + s.migrated_out)
      << where;
}

// Spin (bounded) until `done` or the deadline; returns whether it settled.
bool wait_for(const std::function<bool()>& done, double seconds = 5.0) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < seconds) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

TEST(ShardFailover, RejoinRuleUsesPreviousFinishWhenAhead) {
  // Scheduler-level check of the rejoin branch the engine path below cannot
  // pin deterministically: a flow removed with tags ahead of v(t) must
  // restart from its previous finish, not from v(t) (eq. 4's max).
  SfqScheduler s;
  const FlowId a = s.add_flow(1.0, 100.0);
  s.add_flow(1.0, 100.0);  // keeps the server's flow table non-trivial
  for (uint64_t j = 0; j < 5; ++j)
    ASSERT_TRUE(s.enqueue(make_packet(a, j, 100.0), 0.0));
  // Serve one packet, then remove the flow: tag history (F = 500) survives
  // while v(t) stays at the served prefix.
  std::optional<Packet> p = s.dequeue(0.0);
  ASSERT_TRUE(p.has_value());
  s.on_transmit_complete(*p, 0.1);
  const std::vector<Packet> harvested = s.remove_flow(a, 0.2);
  EXPECT_EQ(harvested.size(), 4u);
  const VirtualTime prev_finish = s.last_finish_tag(a);
  ASSERT_GT(prev_finish, s.vtime())
      << "setup must exercise the previous-finish branch";
  const VirtualTime expected_start = std::max(s.vtime(), prev_finish);

  s.rejoin_flow(a, 0.3);
  ASSERT_TRUE(s.enqueue(make_packet(a, 10, 100.0), 0.3));
  EXPECT_DOUBLE_EQ(s.last_finish_tag(a), expected_start + 100.0 / 1.0);
}

TEST(ShardFailover, AdoptReanchorsStartTagAgainstDestinationVtime) {
  // Engine-level check of the other branch: a flow never served on the
  // destination (previous finish 0) is adopted while the destination is
  // idle, so its first start tag must equal the destination's v(t) — the
  // maximum finish tag of the prior busy period. With one home flow serving
  // 20 packets of l/w = 0.004, that is exactly 0.08; the 5 adopted packets
  // then chain to a final finish of 0.08 + 5 * 0.004.
  SfqScheduler sched;
  const FlowId home = sched.add_flow(1e6, kBits);
  const FlowId mig = sched.add_flow(1e6, kBits);
  sched.remove_flow(mig, 0.0);  // non-home registration (deactivated)

  EngineOptions eo;
  eo.producers = 1;
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(2e8), eo);
  engine.start();
  for (uint64_t j = 0; j < 20; ++j)
    ASSERT_TRUE(engine.offer(0, make_packet(home, j)));
  ASSERT_TRUE(wait_for([&] {
    const EngineStats es = engine.stats();
    return es.transmitted == 20 && es.backlog == 0;
  })) << "home flow must drain before the adoption";

  std::vector<RtEngine::Migration> migs(1);
  migs[0].flow = mig;
  for (uint64_t j = 0; j < 5; ++j) migs[0].backlog.push_back(make_packet(mig, j));
  ASSERT_TRUE(engine.adopt_flows(migs));
  ASSERT_TRUE(wait_for([&] { return engine.stats().backlog == 0; }));
  engine.stop(StopMode::kDrain);

  const double lw = kBits / 1e6;  // 0.004 per packet on the tag axis
  EXPECT_DOUBLE_EQ(sched.last_finish_tag(mig), 20 * lw + 5 * lw);
  const EngineStats es = engine.stats();
  EXPECT_EQ(es.migrated_in, 5u);
  EXPECT_EQ(es.transmitted, 25u);
  expect_migration_ledger(es, "destination");
}

// Harvest a stopped source's exact backlog, adopt it into a destination
// whose buffer is too small for it, and demand the identities stay exact on
// both sides — including A.migrated_out == B.migrated_in — under the given
// overload policy.
void run_migration_ledger(net::OverloadPolicy policy) {
  SfqScheduler sa;
  const FlowId f0 = sa.add_flow(1e6, kBits);
  const FlowId f1 = sa.add_flow(1e6, kBits);
  EngineOptions ea;
  ea.producers = 1;
  RtEngine source(sa, std::make_unique<net::ConstantRate>(1e4), ea);
  source.start();
  for (uint64_t j = 0; j < 60; ++j)
    ASSERT_TRUE(source.offer(0, make_packet(j % 2 == 0 ? f0 : f1, j)));
  // The slow link guarantees a deep backlog; wait until every offer crossed
  // the ring INTO the scheduler (accepted, not just pushed) so stop(kAbandon)
  // has nothing left to discard and the harvest below is the full picture.
  ASSERT_TRUE(wait_for([&] { return source.stats().accepted == 60; }));
  source.stop(StopMode::kAbandon);

  std::vector<RtEngine::Migration> migs = source.harvest_flows({f0, f1});
  ASSERT_EQ(migs.size(), 2u);
  uint64_t moved = 0;
  for (const RtEngine::Migration& m : migs) moved += m.backlog.size();
  const EngineStats as = source.stats();
  EXPECT_EQ(as.migrated_out, moved);
  EXPECT_EQ(as.backlog, 0u) << "harvest must strip the whole backlog";
  EXPECT_GT(moved, 8u) << "setup must overflow the destination buffer";
  expect_migration_ledger(as, "source after harvest");

  SfqScheduler sb;
  sb.add_flow(1e6, kBits);  // same global ids on the destination
  sb.add_flow(1e6, kBits);
  sb.remove_flow(f0, 0.0);
  sb.remove_flow(f1, 0.0);
  EngineOptions eb;
  eb.producers = 1;
  eb.buffer_limit = 8;
  eb.overload_policy = policy;
  RtEngine dest(sb, std::make_unique<net::ConstantRate>(1e6), eb);
  dest.start();
  ASSERT_TRUE(dest.adopt_flows(migs));
  dest.stop(StopMode::kDrain);

  const EngineStats bs = dest.stats();
  EXPECT_EQ(bs.migrated_in, moved) << "every handed packet is accounted";
  EXPECT_EQ(as.migrated_out, bs.migrated_in);
  expect_migration_ledger(bs, "destination after adoption");
  // The overflow lands on the policy's own drop cause, like any arrival.
  if (policy == net::OverloadPolicy::kTailDrop) {
    EXPECT_EQ(cause(bs, obs::DropCause::kBufferLimit), moved - 8);
    EXPECT_EQ(cause(bs, obs::DropCause::kPushout), 0u);
  } else {
    EXPECT_EQ(cause(bs, obs::DropCause::kPushout), moved - 8);
    EXPECT_EQ(cause(bs, obs::DropCause::kBufferLimit), 0u);
  }
  EXPECT_EQ(bs.transmitted + cause(bs, obs::DropCause::kBufferLimit) +
                cause(bs, obs::DropCause::kPushout),
            moved)
      << "adopted backlog fully drains or drops by cause";
}

TEST(ShardFailover, LedgerExactAcrossMigrationTailDrop) {
  run_migration_ledger(net::OverloadPolicy::kTailDrop);
}

TEST(ShardFailover, LedgerExactAcrossMigrationPushout) {
  run_migration_ledger(net::OverloadPolicy::kPushout);
}

TEST(ShardFailover, KillRehomeRestartRehomeBack) {
  // End-to-end: a scripted kill fells one of two shards mid-load; the
  // supervisor must fence it, rehome its flows onto the survivor, restart a
  // fresh engine epoch over the same scheduler and rehome the flows back —
  // with the global ledger exact across the whole excursion.
  constexpr std::size_t kFlows = 6;
  const std::size_t victim = ShardRouter(2).shard_of(0);

  std::vector<ShardFlow> flows(kFlows, ShardFlow{1e6, kBits, ""});
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.link_rate = 2e8;
  opts.engine.producers = 1;
  RtFaultPlan kill_plan;
  kill_plan.kills.push_back({0.05});
  opts.shard_faults.push_back({victim, kill_plan});
  opts.failover.enabled = true;
  opts.failover.poll_interval = 0.0005;
  opts.failover.shard_restart_budget = 1;
  opts.failover.restart_backoff = 0.002;
  auto engine = ShardedEngine::try_create(
      [&](std::size_t, double share) {
        SchedulerOptions so;
        so.assumed_capacity = opts.link_rate * share;
        return make_scheduler("SFQ", so);
      },
      flows, opts);
  ASSERT_NE(engine, nullptr);

  std::size_t victim_flows = 0;
  for (FlowId f = 0; f < kFlows; ++f)
    if (engine->home_shard_of(f) == victim) ++victim_flows;
  ASSERT_GE(victim_flows, 1u) << "the victim shard must own flows";

  engine->start();
  uint64_t seq = 0;
  const bool settled = wait_for([&] {
    // Keep both shards loaded while the failover runs its course.
    for (int burst = 0; burst < 64; ++burst) {
      Packet p = make_packet(static_cast<FlowId>(seq % kFlows), seq);
      engine->offer(0, p);
      ++seq;
    }
    const EngineStats es = engine->stats();
    return engine->shard_failovers() >= 1 &&
           engine->engine_epochs(victim) > 1 &&
           es.migrated_in == es.migrated_out;
  });
  ASSERT_TRUE(settled) << "failover + restart + rehome-back must settle";
  engine->stop(StopMode::kDrain);

  ASSERT_NE(engine->supervisor(), nullptr);
  const std::vector<FailoverEvent>& events = engine->supervisor()->events();
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].shard, victim);
  EXPECT_EQ(events[0].flows_moved, victim_flows);
  EXPECT_TRUE(events[0].restarted) << "cold restart within budget must work";
  EXPECT_GT(engine->migration_slack(), 0.0);
  // Both directions counted: evacuation plus the rehome-back.
  EXPECT_EQ(engine->flows_rehomed(), 2 * victim_flows);
  EXPECT_EQ(engine->engine_epochs(victim), 2u);
  EXPECT_GE(engine->route_version(), 2u);
  EXPECT_FALSE(engine->stalled()) << "a handled failover is not a wedge";
  for (FlowId f = 0; f < kFlows; ++f)
    EXPECT_EQ(engine->shard_of(f), engine->home_shard_of(f))
        << "flow " << f << " must be home after the restart";

  const EngineStats st = engine->stats();
  EXPECT_EQ(st.migrated_in, st.migrated_out) << "settled failovers cancel";
  EXPECT_GT(st.transmitted, 0u);
  expect_migration_ledger(st, "global sum");
  for (std::size_t k = 0; k < 2; ++k)
    expect_migration_ledger(engine->shard_stats(k),
                            "shard " + std::to_string(k));
}

}  // namespace
}  // namespace sfq::rt
