#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "core/sfq_scheduler.h"
#include "harness.h"
#include "hier/hsfq_scheduler.h"
#include "hier/link_sharing.h"
#include "net/rate_profile.h"
#include "stats/fairness.h"

namespace sfq::hier {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

// Depth-1 H-SFQ must degenerate to flat SFQ: identical dequeue sequences on
// a randomized workload.
TEST(Hsfq, FlatTreeEquivalentToSfq) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> len(8.0, 64.0);

  HsfqScheduler h;
  SfqScheduler s;
  const std::vector<double> weights = {1.0, 2.0, 5.0};
  for (double w : weights) {
    h.add_flow(w);
    s.add_flow(w);
  }

  std::vector<uint64_t> seqs(weights.size(), 0);
  for (int round = 0; round < 400; ++round) {
    const bool arrive = (rng() % 2) == 0;
    if (arrive) {
      const FlowId f = static_cast<FlowId>(rng() % weights.size());
      const double l = len(rng);
      const uint64_t q = ++seqs[f];
      h.enqueue(mk(f, q, l), 0.0);
      s.enqueue(mk(f, q, l), 0.0);
    } else {
      auto ph = h.dequeue(0.0);
      auto ps = s.dequeue(0.0);
      ASSERT_EQ(ph.has_value(), ps.has_value());
      if (ph) {
        EXPECT_EQ(ph->flow, ps->flow) << "round " << round;
        EXPECT_EQ(ph->seq, ps->seq);
        h.on_transmit_complete(*ph, 0.0);
        s.on_transmit_complete(*ps, 0.0);
      }
    }
  }
}

// Example 3 of the paper: A and B under the root; C and D under A. While B
// idles, A's subtree gets the whole link and C/D split it 50/50; when B is
// active, A's subtree gets 50% and C/D split *that* 50/50.
TEST(Hsfq, ExampleThreeLinkSharing) {
  HsfqScheduler sched;
  auto class_a = sched.add_class(HsfqScheduler::kRootClass, 1.0, "A");
  FlowId b = sched.add_flow_in_class(HsfqScheduler::kRootClass, 1.0, 10.0, "B");
  FlowId c = sched.add_flow_in_class(class_a, 1.0, 10.0, "C");
  FlowId d = sched.add_flow_in_class(class_a, 1.0, 10.0, "D");

  sim::Simulator sim;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(100.0));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };

  // C and D greedy from t=0; B greedy only during [5, 10).
  traffic::CbrSource sc(sim, c, emit, 200.0, 10.0);
  traffic::CbrSource sd(sim, d, emit, 200.0, 10.0);
  traffic::CbrSource sb(sim, b, emit, 200.0, 10.0);
  sc.run(0.0, 10.0);
  sd.run(0.0, 10.0);
  sb.run(5.0, 10.0);
  sim.run_until(10.0);
  rec.finish(10.0);

  // Phase 1 [0,5): B idle; C+D share the link equally, ~250 bits each... the
  // link does 100 b/s * 5 s = 500 bits.
  EXPECT_NEAR(rec.served_bits(c, 0.0, 5.0), 250.0, 25.0);
  EXPECT_NEAR(rec.served_bits(d, 0.0, 5.0), 250.0, 25.0);
  // Phase 2 [5,10): B gets 50%, C and D get 25% each.
  EXPECT_NEAR(rec.served_bits(b, 5.0, 10.0), 250.0, 25.0);
  EXPECT_NEAR(rec.served_bits(c, 5.0, 10.0), 125.0, 25.0);
  EXPECT_NEAR(rec.served_bits(d, 5.0, 10.0), 125.0, 25.0);
}

// Weighted multi-level hierarchy distributes in proportion at every level.
TEST(Hsfq, WeightedTwoLevelShares) {
  HsfqScheduler sched;
  auto real_time = sched.add_class(HsfqScheduler::kRootClass, 3.0, "rt");
  auto best_effort = sched.add_class(HsfqScheduler::kRootClass, 1.0, "be");
  FlowId audio = sched.add_flow_in_class(real_time, 1.0, 10.0, "audio");
  FlowId video = sched.add_flow_in_class(real_time, 2.0, 10.0, "video");
  FlowId ftp = sched.add_flow_in_class(best_effort, 1.0, 10.0, "ftp");

  sim::Simulator sim;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(400.0));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource s1(sim, audio, emit, 800.0, 10.0);
  traffic::CbrSource s2(sim, video, emit, 800.0, 10.0);
  traffic::CbrSource s3(sim, ftp, emit, 800.0, 10.0);
  s1.run(0.0, 10.0);
  s2.run(0.0, 10.0);
  s3.run(0.0, 10.0);
  sim.run_until(10.0);
  rec.finish(10.0);

  const double total = 400.0 * 10.0;
  // rt gets 3/4 of the link; inside it audio:video = 1:2.
  EXPECT_NEAR(rec.served_bits(audio), total * 0.75 / 3.0, total * 0.02);
  EXPECT_NEAR(rec.served_bits(video), total * 0.75 * 2.0 / 3.0, total * 0.02);
  EXPECT_NEAR(rec.served_bits(ftp), total * 0.25, total * 0.02);
}

// Theorem-1-style fairness between sibling flows *inside* a class whose
// bandwidth fluctuates because of a sibling class coming and going: this is
// the variable-rate fairness requirement of Example 3 and needs SFQ at every
// node.
TEST(Hsfq, SiblingFairnessUnderFluctuatingClassBandwidth) {
  HsfqScheduler sched;
  auto a = sched.add_class(HsfqScheduler::kRootClass, 1.0, "A");
  FlowId b = sched.add_flow_in_class(HsfqScheduler::kRootClass, 1.0, 10.0);
  FlowId c = sched.add_flow_in_class(a, 1.0, 10.0);
  FlowId d = sched.add_flow_in_class(a, 3.0, 10.0);

  sim::Simulator sim;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(100.0));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource scc(sim, c, emit, 200.0, 10.0);
  traffic::CbrSource sd(sim, d, emit, 200.0, 10.0);
  scc.run(0.0, 12.0);
  sd.run(0.0, 12.0);
  // B toggles on and off, modulating class A's bandwidth.
  std::vector<traffic::TraceSource::Item> items;
  for (int burst = 0; burst < 6; ++burst)
    for (int i = 0; i < 10; ++i)
      items.push_back({burst * 2.0 + i * 0.05, 10.0});
  traffic::TraceSource sb(sim, b, emit, items);
  sb.run(0.0, 12.0);

  sim.run_until(12.0);
  rec.finish(12.0);

  const double h = stats::empirical_fairness(rec, c, 1.0, d, 3.0);
  EXPECT_LE(h, stats::sfq_fairness_bound(10.0, 1.0, 10.0, 3.0) + 1e-9);
}

TEST(Hsfq, RejectsBadStructure) {
  HsfqScheduler s;
  EXPECT_THROW(s.add_class(99, 1.0), std::invalid_argument);
  EXPECT_THROW(s.add_class(HsfqScheduler::kRootClass, 0.0),
               std::invalid_argument);
  FlowId f = s.add_flow(1.0);
  (void)f;
  s.enqueue(mk(42, 1, 1.0), 0.0);  // unknown flow: dropped, not thrown
  EXPECT_EQ(s.unknown_flow_drops(), 1u);
  EXPECT_TRUE(s.empty());
}

TEST(Hsfq, ClassVirtualTimeAdvances) {
  HsfqScheduler s;
  FlowId f = s.add_flow(1.0);
  s.enqueue(mk(f, 1, 5.0), 0.0);
  s.enqueue(mk(f, 2, 5.0), 0.0);
  auto p1 = s.dequeue(0.0);
  ASSERT_TRUE(p1);
  EXPECT_DOUBLE_EQ(s.class_vtime(), 0.0);
  s.on_transmit_complete(*p1, 0.0);
  auto p2 = s.dequeue(0.0);
  ASSERT_TRUE(p2);
  // v = start tag of the in-service packet; the busy-period jump to the max
  // finish tag (10) only commits once the last transmission completes.
  EXPECT_DOUBLE_EQ(s.class_vtime(), 5.0);
  s.on_transmit_complete(*p2, 0.0);
  EXPECT_DOUBLE_EQ(s.class_vtime(), 10.0);
}

TEST(Hsfq, BusyPeriodJumpCancelledByArrivalDuringLastTransmission) {
  // The subtree drains at dequeue time, but a packet arriving before
  // on_transmit_complete keeps the busy period alive: no jump, so the
  // arrival's start tag is v (not max finish) and it is not penalized.
  HsfqScheduler s;
  FlowId f = s.add_flow(1.0);
  FlowId g = s.add_flow(1.0);
  s.enqueue(mk(f, 1, 10.0), 0.0);
  auto p1 = s.dequeue(0.0);  // drains the tree; jump armed
  ASSERT_TRUE(p1);
  s.enqueue(mk(g, 1, 10.0), 0.0);  // arrives mid-transmission
  s.on_transmit_complete(*p1, 1.0);
  auto p2 = s.dequeue(1.0);
  ASSERT_TRUE(p2);
  EXPECT_EQ(p2->flow, g);
  // g's start tag is v = 0 (same busy period), not f's finish tag 10.
  EXPECT_DOUBLE_EQ(s.class_vtime(), 0.0);
}


// Three-level tree mixing classes, flows, and weights: shares multiply down
// the hierarchy (the §3 services picture: hard/soft real-time + best effort).
TEST(Hsfq, ThreeLevelTreeSharesMultiply) {
  HsfqScheduler sched;
  auto rt = sched.add_class(HsfqScheduler::kRootClass, 3.0, "rt");
  auto be = sched.add_class(HsfqScheduler::kRootClass, 1.0, "be");
  auto soft = sched.add_class(rt, 2.0, "soft");
  FlowId hard = sched.add_flow_in_class(rt, 1.0, 10.0, "hard");
  FlowId soft_hi = sched.add_flow_in_class(soft, 3.0, 10.0, "soft-hi");
  FlowId soft_lo = sched.add_flow_in_class(soft, 1.0, 10.0, "soft-lo");
  FlowId bulk = sched.add_flow_in_class(be, 1.0, 10.0, "bulk");

  sim::Simulator sim;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(1200.0));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  std::vector<std::unique_ptr<traffic::Source>> src;
  for (FlowId f : {hard, soft_hi, soft_lo, bulk}) {
    src.push_back(
        std::make_unique<traffic::CbrSource>(sim, f, emit, 2400.0, 10.0));
    src.back()->run(0.0, 10.0);
  }
  sim.run_until(10.0);
  rec.finish(10.0);

  // Root: rt 3/4 = 900, be 1/4 = 300. Inside rt: hard 1/3 = 300,
  // soft 2/3 = 600. Inside soft: hi 450, lo 150. (bits/s x 10 s)
  EXPECT_NEAR(rec.served_bits(hard), 3000.0, 150.0);
  EXPECT_NEAR(rec.served_bits(soft_hi), 4500.0, 200.0);
  EXPECT_NEAR(rec.served_bits(soft_lo), 1500.0, 100.0);
  EXPECT_NEAR(rec.served_bits(bulk), 3000.0, 150.0);
}

// --- LinkSharingTree analytics (eq. 65 recursion) ---------------------------

TEST(LinkSharing, Eq65RecursionMatchesHandComputation) {
  // Link: FC(1000, 100). Class A: rate 400. Children of root: A (lmax 50)
  // and flow B (lmax 80). Then A is FC(400, 400*(50+80)/1000 + 400*100/1000
  // + 50) = FC(400, 52+40+50 = 142).
  LinkSharingTree tree({1000.0, 100.0});
  auto a = tree.add_class(LinkSharingTree::kRoot, 400.0, "A");
  tree.add_flow(LinkSharingTree::kRoot, 600.0, 80.0, "B");
  FlowId c = tree.add_flow(a, 200.0, 50.0, "C");
  (void)c;

  const auto pa = tree.class_params(a);
  EXPECT_DOUBLE_EQ(pa.rate, 400.0);
  EXPECT_NEAR(pa.delta, 400.0 * 130.0 / 1000.0 + 400.0 * 100.0 / 1000.0 + 50.0,
              1e-9);
}

TEST(LinkSharing, FlowDelayTermUsesParentClassServer) {
  LinkSharingTree tree({1000.0, 0.0});
  auto a = tree.add_class(LinkSharingTree::kRoot, 500.0, "A");
  FlowId f = tree.add_flow(a, 250.0, 100.0, "f");
  FlowId g = tree.add_flow(a, 250.0, 100.0, "g");
  (void)g;

  // A is the root's only child, so the root-level sum of l^max is A's
  // subtree l^max = 100: class A = FC(500, 500*100/1000 + 0 + 100)
  //                              = FC(500, 150).
  // Theorem 4 at A: beta = l_other/C_A + l/C_A + delta_A/C_A
  //               = 100/500 + 100/500 + 150/500 = 0.7.
  EXPECT_NEAR(tree.flow_delay_term(f, 100.0), 0.7, 1e-9);
}

TEST(LinkSharing, ThroughputBoundIsSane) {
  LinkSharingTree tree({1000.0, 0.0});
  FlowId f = tree.add_flow(LinkSharingTree::kRoot, 400.0, 50.0, "f");
  tree.add_flow(LinkSharingTree::kRoot, 600.0, 50.0, "g");
  // Over 10 s, the bound approaches 400*10 minus constants.
  const double b = tree.flow_throughput_bound(f, 0.0, 10.0);
  EXPECT_GT(b, 400.0 * 10.0 - 200.0);
  EXPECT_LT(b, 400.0 * 10.0);
}

}  // namespace
}  // namespace sfq::hier
