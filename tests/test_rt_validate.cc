#include "rt/validate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "net/rate_profile.h"
#include "rt/engine.h"
#include "rt/load_gen.h"
#include "core/sfq_scheduler.h"

namespace sfq::rt {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(RtValidate, DefaultOptionsAreValid) {
  EXPECT_FALSE(validate(EngineOptions{}).has_value());
  EXPECT_FALSE(validate(LoadGenOptions{}).has_value());
  FlowLoad l;
  l.flow = 0;
  l.rate = 1e6;
  l.packet_bits = 8000;
  EXPECT_FALSE(validate(l).has_value());
}

TEST(RtValidate, EngineOptionTable) {
  struct Case {
    const char* what;
    void (*mutate)(EngineOptions&);
  };
  const Case cases[] = {
      {"zero producers", [](EngineOptions& o) { o.producers = 0; }},
      {"zero-capacity ring", [](EngineOptions& o) { o.ring_capacity = 0; }},
      {"negative spin", [](EngineOptions& o) { o.spin_threshold = -1.0; }},
      {"nan stall timeout", [](EngineOptions& o) { o.stall_timeout = kNan; }},
      {"negative stats interval",
       [](EngineOptions& o) { o.stats_interval = -0.5; }},
      {"shed exit above enter",
       [](EngineOptions& o) {
         o.admission_control = true;
         o.shed_exit = 0.9;
         o.shed_enter = 0.8;
       }},
      {"shed critical above 1",
       [](EngineOptions& o) {
         o.admission_control = true;
         o.shed_critical = 1.5;
       }},
      {"zero critical factor",
       [](EngineOptions& o) {
         o.admission_control = true;
         o.shed_critical_factor = 0.0;
       }},
      {"negative shed burst",
       [](EngineOptions& o) {
         o.admission_control = true;
         o.shed_burst = -1.0;
       }},
      {"nan jump delta",
       [](EngineOptions& o) { o.fault_plan.jumps.push_back({0.1, kNan}); }},
      {"backwards skew window",
       [](EngineOptions& o) { o.fault_plan.skews.push_back({2.0, 1.0, 2.0}); }},
      {"negative skew factor",
       [](EngineOptions& o) { o.fault_plan.skews.push_back({0.0, 1.0, -1.0}); }},
      {"negative pause duration",
       [](EngineOptions& o) { o.fault_plan.pauses.push_back({0.1, -0.1}); }},
  };
  for (const Case& c : cases) {
    EngineOptions o;
    c.mutate(o);
    EXPECT_TRUE(validate(o).has_value()) << c.what;
  }
  // Shed thresholds are only checked when admission control is on.
  EngineOptions off;
  off.shed_exit = 0.9;
  off.shed_enter = 0.8;
  EXPECT_FALSE(validate(off).has_value());
}

TEST(RtValidate, LoadGenOptionTable) {
  struct Case {
    const char* what;
    void (*mutate)(LoadGenOptions&);
  };
  const Case cases[] = {
      {"zero slice", [](LoadGenOptions& o) { o.slice = 0.0; }},
      {"nan slice", [](LoadGenOptions& o) { o.slice = kNan; }},
      {"zero backoff initial",
       [](LoadGenOptions& o) { o.backoff_initial = 0.0; }},
      {"backoff max below initial",
       [](LoadGenOptions& o) { o.backoff_max = o.backoff_initial / 2; }},
      {"shrinking multiplier",
       [](LoadGenOptions& o) { o.backoff_multiplier = 0.5; }},
      {"jitter of 1", [](LoadGenOptions& o) { o.backoff_jitter = 1.0; }},
      {"negative jitter", [](LoadGenOptions& o) { o.backoff_jitter = -0.1; }},
      {"infinite deadline",
       [](LoadGenOptions& o) { o.offer_deadline = kInf; }},
  };
  for (const Case& c : cases) {
    LoadGenOptions o;
    c.mutate(o);
    EXPECT_TRUE(validate(o).has_value()) << c.what;
  }
}

TEST(RtValidate, FlowLoadTable) {
  FlowLoad base;
  base.flow = 0;
  base.rate = 1e6;
  base.packet_bits = 8000;

  FlowLoad l = base;
  l.flow = kInvalidFlow;
  EXPECT_TRUE(validate(l).has_value());

  l = base;
  l.rate = 0.0;
  EXPECT_TRUE(validate(l).has_value());
  l.rate = kNan;
  EXPECT_TRUE(validate(l).has_value());

  l = base;
  l.packet_bits = -8.0;
  EXPECT_TRUE(validate(l).has_value());

  l = base;
  l.start = -1.0;
  EXPECT_TRUE(validate(l).has_value());

  l = base;
  l.model = FlowLoad::Model::kOnOff;
  l.mean_on = 0.0;
  EXPECT_TRUE(validate(l).has_value());
}

TEST(RtValidate, TryCreateReturnsErrorInsteadOfThrowing) {
  SfqScheduler sched;
  sched.add_flow(1e6, 8000);

  // Null profile.
  std::unique_ptr<net::RateProfile> null_profile;
  std::string err;
  EXPECT_EQ(RtEngine::try_create(sched, null_profile, {}, &err), nullptr);
  EXPECT_FALSE(err.empty());

  // Malformed options: the profile is NOT consumed on failure.
  std::unique_ptr<net::RateProfile> profile =
      std::make_unique<net::ConstantRate>(1e9);
  EngineOptions bad;
  bad.ring_capacity = 0;
  err.clear();
  EXPECT_EQ(RtEngine::try_create(sched, profile, bad, &err), nullptr);
  EXPECT_NE(err.find("ring_capacity"), std::string::npos);
  ASSERT_NE(profile, nullptr);

  // Valid options succeed and consume the profile.
  auto engine = RtEngine::try_create(sched, profile, {}, &err);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(profile, nullptr);

  // LoadGen: malformed flow spec caught without a throw.
  FlowLoad badload;
  badload.flow = 0;
  badload.rate = -5.0;
  badload.packet_bits = 8000;
  err.clear();
  EXPECT_EQ(LoadGen::try_create(*engine, {{badload}}, {}, &err), nullptr);
  EXPECT_NE(err.find("rate"), std::string::npos);

  // More producers than engine shards.
  FlowLoad ok;
  ok.flow = 0;
  ok.rate = 1e6;
  ok.packet_bits = 8000;
  err.clear();
  EXPECT_EQ(LoadGen::try_create(*engine, {{ok}, {ok}}, {}, &err), nullptr);
  EXPECT_FALSE(err.empty());

  // And the throwing constructors surface the same message.
  EXPECT_THROW(LoadGen(*engine, {{badload}}, {}), std::invalid_argument);
  EXPECT_THROW(RtEngine(sched, nullptr, EngineOptions{}),
               std::invalid_argument);
}

// Checked-in corpus of malformed option sets (tests/corpus/rt_options),
// mirroring the config-parser corpus: every file must come back from
// validate() with a diagnostic, never crash, and never slip through. New
// validation failure classes get a corpus file, not just a table entry.
// Format: one `engine.<field>`, `loadgen.<field>` or `flow.<field>`
// directive per line; `#` starts a comment.
TEST(RtValidate, CorpusFilesAreAllRejectedWithADiagnostic) {
  namespace fs = std::filesystem;
  std::size_t seen = 0;
  for (const fs::directory_entry& e :
       fs::directory_iterator(SFQ_TEST_RT_CORPUS_DIR)) {
    if (e.path().extension() != ".opts") continue;
    ++seen;
    const std::string file = e.path().filename().string();

    EngineOptions eng;
    LoadGenOptions lg;
    FlowLoad flow;  // valid base so only the corpus directive is at fault
    flow.flow = 0;
    flow.rate = 1e6;
    flow.packet_bits = 8000;
    bool has_eng = false, has_lg = false, has_flow = false;

    std::ifstream in(e.path());
    ASSERT_TRUE(in) << file;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string key, tok;
      ls >> key >> tok;
      // std::stod (not stream extraction) so "nan" and "inf" parse.
      const double v = tok.empty() ? 0.0 : std::stod(tok);
      if (key == "engine.producers") eng.producers = static_cast<std::size_t>(v);
      else if (key == "engine.ring_capacity")
        eng.ring_capacity = static_cast<std::size_t>(v);
      else if (key == "engine.spin_threshold") eng.spin_threshold = v;
      else if (key == "engine.stall_timeout") eng.stall_timeout = v;
      else if (key == "engine.admission_control") eng.admission_control = v != 0.0;
      else if (key == "engine.shed_enter") eng.shed_enter = v;
      else if (key == "engine.shed_exit") eng.shed_exit = v;
      else if (key == "engine.shed_critical") eng.shed_critical = v;
      else if (key == "engine.shed_critical_factor") eng.shed_critical_factor = v;
      else if (key == "engine.shed_burst") eng.shed_burst = v;
      else if (key == "engine.fault_pause") {
        double dur = 0.0;
        ls >> dur;
        eng.fault_plan.pauses.push_back({v, dur});
      } else if (key == "loadgen.slice") lg.slice = v;
      else if (key == "loadgen.backoff_initial") lg.backoff_initial = v;
      else if (key == "loadgen.backoff_max") lg.backoff_max = v;
      else if (key == "loadgen.backoff_multiplier") lg.backoff_multiplier = v;
      else if (key == "loadgen.backoff_jitter") lg.backoff_jitter = v;
      else if (key == "loadgen.offer_deadline") lg.offer_deadline = v;
      else if (key == "flow.rate") flow.rate = v;
      else if (key == "flow.packet_bits") flow.packet_bits = v;
      else if (key == "flow.start") flow.start = v;
      else {
        ADD_FAILURE() << file << ": unknown corpus key '" << key << "'";
        continue;
      }
      if (key.rfind("engine.", 0) == 0) has_eng = true;
      else if (key.rfind("loadgen.", 0) == 0) has_lg = true;
      else has_flow = true;
    }

    // At least one touched section must reject, with a non-empty message.
    std::string detail;
    if (has_eng)
      if (auto err = validate(eng)) detail = *err;
    if (detail.empty() && has_lg)
      if (auto err = validate(lg)) detail = *err;
    if (detail.empty() && has_flow)
      if (auto err = validate(flow)) detail = *err;
    EXPECT_FALSE(detail.empty()) << file << " unexpectedly validated";
  }
  EXPECT_GE(seen, 10u) << "rt corpus went missing from "
                       << SFQ_TEST_RT_CORPUS_DIR;
}

}  // namespace
}  // namespace sfq::rt
