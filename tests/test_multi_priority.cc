#include <gtest/gtest.h>

#include <memory>

#include "core/sfq_scheduler.h"
#include "net/multi_priority_server.h"
#include "net/rate_profile.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "sched/fifo_scheduler.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "traffic/leaky_bucket.h"
#include "traffic/sources.h"

namespace sfq::net {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

std::vector<std::unique_ptr<Scheduler>> three_bands() {
  std::vector<std::unique_ptr<Scheduler>> bands;
  bands.push_back(std::make_unique<FifoScheduler>());  // network control
  bands.push_back(std::make_unique<SfqScheduler>());   // real-time
  bands.push_back(std::make_unique<SfqScheduler>());   // best effort
  return bands;
}

TEST(MultiPriority, StrictOrderAcrossBands) {
  sim::Simulator sim;
  auto bands = three_bands();
  bands[1]->add_flow(1.0);
  bands[2]->add_flow(1.0);
  MultiPriorityServer server(sim, std::move(bands),
                             std::make_unique<ConstantRate>(10.0));
  std::vector<std::size_t> order;
  server.set_departure([&](std::size_t b, const Packet&, Time) {
    order.push_back(b);
  });
  sim.at(0.0, [&] {
    server.inject(2, mk(0, 1, 10.0));  // grabs the idle link
    server.inject(1, mk(0, 1, 10.0));
    server.inject(0, mk(0, 1, 10.0));
    server.inject(2, mk(0, 2, 10.0));
    server.inject(0, mk(0, 2, 10.0));
  });
  sim.run();
  // First the in-flight band-2 packet, then both band-0, then band-1, then
  // the remaining band-2.
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 0, 0, 1, 2}));
}

TEST(MultiPriority, LowerBandSeesResidualThroughput) {
  sim::Simulator sim;
  auto bands = three_bands();
  FlowId rt = bands[1]->add_flow(1.0, 10.0);
  FlowId be_a = bands[2]->add_flow(1.0, 10.0);
  FlowId be_b = bands[2]->add_flow(3.0, 10.0);
  MultiPriorityServer server(sim, std::move(bands),
                             std::make_unique<ConstantRate>(100.0));
  stats::ServiceRecorder rec_rt, rec_be;
  server.set_recorder(1, &rec_rt);
  server.set_recorder(2, &rec_be);

  // Band 0: 30 b/s control; band 1: 30 b/s real-time; band 2: greedy.
  traffic::CbrSource ctl(sim, 0, [&](Packet p) { server.inject(0, std::move(p)); },
                         30.0, 10.0);
  traffic::CbrSource rts(sim, rt,
                         [&](Packet p) { server.inject(1, std::move(p)); },
                         30.0, 10.0);
  traffic::CbrSource bea(sim, be_a,
                         [&](Packet p) { server.inject(2, std::move(p)); },
                         100.0, 10.0);
  traffic::CbrSource beb(sim, be_b,
                         [&](Packet p) { server.inject(2, std::move(p)); },
                         100.0, 10.0);
  ctl.run(0.0, 20.0);
  rts.run(0.0, 20.0);
  bea.run(0.0, 20.0);
  beb.run(0.0, 20.0);
  sim.run_until(20.0);
  rec_be.finish(20.0);
  rec_rt.finish(20.0);

  // Real-time got its full offered 30 b/s; best effort split the residual
  // ~40 b/s in the 1:3 weight ratio (SFQ on the fluctuating residual).
  EXPECT_NEAR(rec_rt.served_bits(rt) / 20.0, 30.0, 2.0);
  const double a = rec_be.served_bits(be_a), b = rec_be.served_bits(be_b);
  EXPECT_NEAR((a + b) / 20.0, 40.0, 4.0);
  EXPECT_NEAR(b / a, 3.0, 0.3);
  // And the split is fair in the Theorem-1 sense despite the variable rate.
  const double h = stats::empirical_fairness(rec_be, be_a, 1.0, be_b, 3.0);
  EXPECT_LE(h, qos::sfq_fairness_bound(10.0, 1.0, 10.0, 3.0) + 1e-9);
}

// §2.3: when the higher-priority aggregate is (sigma, rho) leaky-bucket
// shaped, the band below is an FC(C - rho, sigma) server and Theorem 4's
// delay bound applies with those parameters.
TEST(MultiPriority, ShapedHighPriorityYieldsFcResidualDelayBound) {
  const double C = 1000.0, rho = 400.0, sigma = 300.0, len = 50.0;
  sim::Simulator sim;
  std::vector<std::unique_ptr<Scheduler>> bands;
  bands.push_back(std::make_unique<FifoScheduler>());
  bands.push_back(std::make_unique<SfqScheduler>());
  FlowId f0 = bands[1]->add_flow(300.0, len);
  FlowId f1 = bands[1]->add_flow(300.0, len);
  MultiPriorityServer server(sim, std::move(bands),
                             std::make_unique<ConstantRate>(C));

  qos::PerFlowEat eat;
  std::vector<std::vector<Time>> eats(2);
  Time worst = -kTimeInfinity;
  server.set_departure([&](std::size_t band, const Packet& p, Time t) {
    if (band == 1) worst = std::max(worst, t - eats[p.flow][p.seq - 1]);
  });

  traffic::LeakyBucketShaper lb(sim, sigma, rho, [&](Packet p) {
    server.inject(0, std::move(p));
  });
  traffic::OnOffSource hp(sim, 0, [&](Packet p) { lb.inject(std::move(p)); },
                          3.0 * rho, len, 0.05, 0.05, 9);
  hp.run(0.0, 20.0);

  auto emit = [&](Packet p) {
    eats[p.flow].push_back(
        eat.on_arrival(p.flow, sim.now(), p.length_bits, 300.0));
    server.inject(1, std::move(p));
  };
  traffic::PoissonSource s0(sim, f0, emit, 250.0, len, 10);
  traffic::PoissonSource s1(sim, f1, emit, 250.0, len, 12);
  s0.run(0.0, 20.0);
  s1.run(0.0, 20.0);
  sim.run_until(20.0);
  sim.run();

  // Residual FC server: (C - rho, sigma + l_hp^max) — one extra packet of
  // burst because a high-priority packet can arrive just as the shaper
  // refills while a low-priority transmission is in flight (non-preemption
  // is already covered by Theorem 4's own l/C terms, but the shaper burst
  // rides on top).
  const Time beta = qos::sfq_fc_delay_term({C - rho, sigma + len}, len, len);
  EXPECT_LE(worst, beta + 1e-9);
}

TEST(MultiPriority, RejectsBadConfig) {
  sim::Simulator sim;
  EXPECT_THROW(MultiPriorityServer(sim, {},
                                   std::make_unique<ConstantRate>(1.0)),
               std::invalid_argument);
  auto bands = three_bands();
  MultiPriorityServer server(sim, std::move(bands),
                             std::make_unique<ConstantRate>(1.0));
  EXPECT_THROW(server.inject(7, mk(0, 1, 1.0)), std::out_of_range);
}

}  // namespace
}  // namespace sfq::net
