// Lock-free SPSC ring (rt/spsc_ring.h): boundary conditions, index
// wraparound, slot release for non-trivial payloads, and a two-thread
// producer/consumer stress run (the case scripts/tsan.sh exists for).
#include "rt/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace sfq::rt {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRing, EmptyRing) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.front(), nullptr);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRing, FullBoundaryAndFifoOrder) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: exactly capacity elements
  EXPECT_EQ(ring.size(), 4u);

  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));   // one slot reopened
  EXPECT_FALSE(ring.try_push(5));  // and only one

  for (int expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FrontIsStableUntilPop) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.try_push(7));
  int* f = ring.front();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(*f, 7);
  EXPECT_EQ(ring.front(), f);  // repeated peek, same slot
  ring.pop();
  EXPECT_EQ(ring.front(), nullptr);
}

// Indices are free-running; drive the ring through many times its capacity
// so head/tail wrap the slot mask repeatedly (and, with a biased start, the
// arithmetic is exercised near uint64 boundaries by construction of tail -
// head comparisons).
TEST(SpscRing, WraparoundPreservesOrder) {
  SpscRing<uint64_t> ring(8);
  uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    // Vary the burst size so head and tail take every relative offset.
    const int burst = 1 + round % 8;
    for (int i = 0; i < burst; ++i)
      if (ring.try_push(next_in)) ++next_in;
    uint64_t v = 0;
    while (ring.try_pop(v)) {
      ASSERT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_GT(next_out, 8u * 100);  // wrapped many times
}

TEST(SpscRing, PopReleasesNonTrivialSlot) {
  SpscRing<std::shared_ptr<int>> ring(2);
  auto p = std::make_shared<int>(42);
  ASSERT_TRUE(ring.try_push(p));
  EXPECT_EQ(p.use_count(), 2);
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  out.reset();
  EXPECT_EQ(p.use_count(), 1);  // slot no longer holds a reference
}

// Two-thread stress: one producer, one consumer, a small ring so both sides
// hit full/empty constantly. The consumer must see 0..N-1 in order.
TEST(SpscRing, TwoThreadStress) {
  constexpr uint64_t kCount = 200000;
  SpscRing<uint64_t> ring(64);

  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.try_push(i))
        ++i;
      else
        std::this_thread::yield();
    }
  });

  uint64_t expect = 0;
  uint64_t sum = 0;
  while (expect < kCount) {
    uint64_t v = 0;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expect);
      sum += v;
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

}  // namespace
}  // namespace sfq::rt
