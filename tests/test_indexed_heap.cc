#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/indexed_heap.h"

namespace sfq {
namespace {

TEST(IndexedHeap, PushPopOrdersByKey) {
  IndexedHeap<TagKey> h;
  h.push(0, TagKey{3.0, 0, 0});
  h.push(1, TagKey{1.0, 0, 1});
  h.push(2, TagKey{2.0, 0, 2});
  EXPECT_EQ(h.top_id(), 1u);
  h.pop();
  EXPECT_EQ(h.top_id(), 2u);
  h.pop();
  EXPECT_EQ(h.top_id(), 0u);
  h.pop();
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, UpdateMovesBothDirections) {
  IndexedHeap<TagKey> h;
  h.push(0, TagKey{1.0, 0, 0});
  h.push(1, TagKey{2.0, 0, 1});
  h.update(0, TagKey{3.0, 0, 2});  // down
  EXPECT_EQ(h.top_id(), 1u);
  h.update(0, TagKey{0.5, 0, 3});  // up
  EXPECT_EQ(h.top_id(), 0u);
}

TEST(IndexedHeap, EraseMiddle) {
  IndexedHeap<TagKey> h;
  for (uint32_t i = 0; i < 10; ++i)
    h.push(i, TagKey{static_cast<double>(i), 0, i});
  h.erase(4);
  EXPECT_FALSE(h.contains(4));
  std::vector<uint32_t> out;
  while (!h.empty()) {
    out.push_back(h.top_id());
    h.pop();
  }
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1, 2, 3, 5, 6, 7, 8, 9}));
}

TEST(IndexedHeap, TagKeyTieBreaksBySecondaryThenSeq) {
  IndexedHeap<TagKey> h;
  h.push(0, TagKey{1.0, 2.0, 0});
  h.push(1, TagKey{1.0, 1.0, 5});
  h.push(2, TagKey{1.0, 1.0, 3});
  EXPECT_EQ(h.top_id(), 2u);  // same tag, same secondary, lower seq
  h.pop();
  EXPECT_EQ(h.top_id(), 1u);
  h.pop();
  EXPECT_EQ(h.top_id(), 0u);
}

TEST(IndexedHeap, PushOrUpdate) {
  IndexedHeap<TagKey> h;
  h.push_or_update(7, TagKey{2.0, 0, 0});
  h.push_or_update(7, TagKey{1.0, 0, 1});
  EXPECT_EQ(h.size(), 1u);
  EXPECT_DOUBLE_EQ(h.top_key().tag, 1.0);
}

TEST(IndexedHeap, RandomizedAgainstSort) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> key(0.0, 100.0);
  for (int round = 0; round < 20; ++round) {
    IndexedHeap<TagKey> h;
    std::vector<std::pair<double, uint32_t>> ref;
    for (uint32_t i = 0; i < 200; ++i) {
      const double k = key(rng);
      h.push(i, TagKey{k, 0, i});
      ref.emplace_back(k, i);
    }
    // Random updates.
    for (int u = 0; u < 100; ++u) {
      const uint32_t id = static_cast<uint32_t>(rng() % 200);
      const double k = key(rng);
      h.update(id, TagKey{k, 0, id});
      ref[id].first = k;
    }
    std::vector<uint32_t> expect;
    std::sort(ref.begin(), ref.end());
    for (auto& [k, id] : ref) expect.push_back(id);
    std::vector<uint32_t> got;
    while (!h.empty()) {
      got.push_back(h.top_id());
      h.pop();
    }
    EXPECT_EQ(got, expect);
  }
}

// The event queue instantiates Arity=4; exercise that shape explicitly with
// a randomized mix of push/update/erase/pop against a sorted reference
// (covers the hole-based sift paths and the dedicated pop()).
TEST(IndexedHeap, FourAryRandomizedMixedOps) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> key(0.0, 1000.0);
  for (int round = 0; round < 10; ++round) {
    IndexedHeap<TagKey, 4> h;
    std::vector<std::pair<double, uint32_t>> ref;  // (key, id), absent erased
    uint32_t next_id = 0;
    for (int step = 0; step < 3000; ++step) {
      const uint64_t r = rng() % 100;
      if (r < 45 || ref.empty()) {
        const uint32_t id = next_id++;
        const double k = key(rng);
        h.push(id, TagKey{k, 0, id});
        ref.emplace_back(k, id);
      } else if (r < 65) {
        auto& e = ref[rng() % ref.size()];
        e.first = key(rng);
        h.update(e.second, TagKey{e.first, 0, e.second});
      } else if (r < 80) {
        const std::size_t pick = rng() % ref.size();
        h.erase(ref[pick].second);
        ref.erase(ref.begin() + pick);
      } else {
        auto best = std::min_element(
            ref.begin(), ref.end(), [](auto& a, auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
        ASSERT_EQ(h.top_id(), best->second) << "step " << step;
        h.pop();
        EXPECT_FALSE(h.contains(best->second));
        ref.erase(best);
      }
      ASSERT_EQ(h.size(), ref.size());
    }
    // Drain: full extraction must come out sorted.
    std::sort(ref.begin(), ref.end());
    for (auto& [k, id] : ref) {
      EXPECT_EQ(h.top_id(), id);
      h.pop();
    }
    EXPECT_TRUE(h.empty());
  }
}

TEST(IndexedHeap, ClearResets) {
  IndexedHeap<TagKey> h;
  h.push(0, TagKey{1, 0, 0});
  h.push(1, TagKey{2, 0, 1});
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(0));
  h.push(0, TagKey{5, 0, 2});
  EXPECT_EQ(h.top_id(), 0u);
}

}  // namespace
}  // namespace sfq
