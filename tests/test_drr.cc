#include <gtest/gtest.h>

#include <memory>

#include "core/sfq_scheduler.h"
#include "harness.h"
#include "net/rate_profile.h"
#include "qos/bounds.h"
#include "sched/drr_scheduler.h"
#include "stats/fairness.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

TEST(Drr, QuantumProportionalToWeight) {
  DrrScheduler s(100.0);
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(3.0);
  EXPECT_DOUBLE_EQ(s.quantum(a), 100.0);
  EXPECT_DOUBLE_EQ(s.quantum(b), 300.0);
}

TEST(Drr, RoundRobinHonorsDeficits) {
  // Quanta: a=100, b=100. Packets of 60 bits: each visit serves one packet
  // (deficit 100 -> 40, next head 60 > 40 -> next round starts at 140 - 60...)
  DrrScheduler s(100.0);
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(1.0);
  for (int j = 1; j <= 3; ++j) {
    s.enqueue(mk(a, j, 60.0), 0.0);
    s.enqueue(mk(b, j, 60.0), 0.0);
  }
  // Round 1: a gets quantum 100, sends one 60 (deficit 40), head 60 > 40 ->
  // moves on; b likewise. Round 2: deficit 40+100=140 -> two packets each.
  std::vector<FlowId> order;
  while (auto p = s.dequeue(0.0)) order.push_back(p->flow);
  EXPECT_EQ(order, (std::vector<FlowId>{a, b, a, a, b, b}));
}

TEST(Drr, ResidualDeficitForfeitedWhenQueueEmpties) {
  DrrScheduler s(100.0);
  FlowId a = s.add_flow(1.0);
  s.enqueue(mk(a, 1, 10.0), 0.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(s.deficit(a), 0.0);  // reset on emptying
}

TEST(Drr, LongRunSharesProportionalToWeights) {
  DrrScheduler s(/*quantum_per_weight=*/1.0);  // quantum = weight bits
  const double w0 = 100.0, w1 = 300.0, len = 50.0;
  // Oversubscribe so the shares reflect scheduling, measured inside the
  // overloaded window (the harness drains queues afterwards).
  auto r = test::run_workload(
      s, std::make_unique<net::ConstantRate>(1000.0),
      {{w0, len, test::Kind::kGreedy, 5.0 * w0},
       {w1, len, test::Kind::kGreedy, 5.0 * w1}},
      10.0);
  const double b0 = r->recorder.served_bits(r->ids[0], 0.0, 10.0);
  const double b1 = r->recorder.served_bits(r->ids[1], 0.0, 10.0);
  EXPECT_NEAR(b1 / b0, 3.0, 0.1);
}

// Table 1: DRR's fairness measure deviates arbitrarily from SFQ's as weights
// grow. With r_f = r_m = 100 and l^max = 1 the paper computes H_DRR ~ 1.02 vs
// H_SFQ = 0.02 (50x). Reproduce the separation empirically: DRR serves a
// whole quantum (100 packets) from one flow before switching, so the
// co-backlogged service imbalance reaches ~ quantum/weight ~ 1, while SFQ
// alternates packet by packet and stays within 0.02.
TEST(Drr, FairnessGapVsSfqGrowsWithWeights) {
  const double w = 100.0, len = 1.0;
  // Capacity below the offered load so both flows stay backlogged.
  auto drr_run = [&] {
    DrrScheduler s(1.0);  // quantum = 100 bits = 100 packets
    return test::run_workload(
        s, std::make_unique<net::ConstantRate>(100.0),
        {{w, len, test::Kind::kGreedy}, {w, len, test::Kind::kGreedy}}, 5.0);
  };
  auto sfq_run = [&] {
    SfqScheduler s;
    return test::run_workload(
        s, std::make_unique<net::ConstantRate>(100.0),
        {{w, len, test::Kind::kGreedy}, {w, len, test::Kind::kGreedy}}, 5.0);
  };
  auto rd = drr_run();
  auto rs = sfq_run();
  const double h_drr = stats::empirical_fairness(rd->recorder, rd->ids[0], w,
                                                 rd->ids[1], w);
  const double h_sfq = stats::empirical_fairness(rs->recorder, rs->ids[0], w,
                                                 rs->ids[1], w);
  EXPECT_LE(h_sfq, qos::sfq_fairness_bound(len, w, len, w) + 1e-9);  // 0.02
  EXPECT_GT(h_drr, 10.0 * h_sfq);  // an order of magnitude worse, at least
}

TEST(Drr, HeadLargerThanQuantumEventuallySent) {
  // A packet bigger than one quantum accumulates deficit across rounds.
  DrrScheduler s(10.0);
  FlowId a = s.add_flow(1.0);  // quantum 10
  FlowId b = s.add_flow(1.0);
  s.enqueue(mk(a, 1, 35.0), 0.0);
  s.enqueue(mk(b, 1, 5.0), 0.0);
  std::vector<FlowId> order;
  while (auto p = s.dequeue(0.0)) order.push_back(p->flow);
  // a needs 4 rounds of quantum; b's small packet goes out on round 1.
  EXPECT_EQ(order, (std::vector<FlowId>{b, a}));
}

TEST(Drr, UnknownFlowIsCountedDrop) {
  DrrScheduler s;
  s.enqueue(mk(5, 1, 1.0), 0.0);  // never registered: dropped, not thrown
  EXPECT_EQ(s.unknown_flow_drops(), 1u);
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace sfq
