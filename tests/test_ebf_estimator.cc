#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/rate_profile.h"
#include "qos/ebf_estimator.h"

namespace sfq::qos {
namespace {

TEST(EbfEstimator, ConstantRateLinkIsTrivialEbf) {
  net::ConstantRate link(1000.0);
  const auto fit = estimate_ebf(link, 1000.0);
  EXPECT_DOUBLE_EQ(fit.params.rate, 1000.0);
  EXPECT_LE(fit.params.delta, 1e-9);
  EXPECT_LE(fit.max_observed_deficit, 1e-9);
}

TEST(EbfEstimator, FittedParamsUpperBoundTheSampleTail) {
  net::EbfRandomRate::Params p;
  p.average = 1000.0;
  p.on_rate = 2200.0;
  p.mean_pause = 0.01;
  p.mean_run = 0.015;
  p.seed = 31;
  net::EbfRandomRate link(p);
  const auto fit = estimate_ebf(link, p.average);

  ASSERT_GT(fit.params.alpha, 0.0);
  ASSERT_GT(fit.params.b, 0.0);
  // Validate Definition 2 on an *independent* sample grid: the exceedance
  // frequency at several slacks must sit below B e^{-alpha gamma}.
  std::vector<double> deficits;
  for (Time t = 61.0; t < 120.0; t += 0.037)
    deficits.push_back(
        std::max(0.0, p.average * 0.8 - link.work(t, t + 0.8)));
  std::sort(deficits.begin(), deficits.end());
  for (double gamma : {0.0, 5.0, 10.0, 20.0, 40.0}) {
    const double thr = fit.params.delta + gamma;
    const auto it = std::upper_bound(deficits.begin(), deficits.end(), thr);
    const double measured = static_cast<double>(deficits.end() - it) /
                            static_cast<double>(deficits.size());
    const double bound = sfq_ebf_throughput_violation_prob(fit.params, gamma);
    // Allow modest sampling noise: the bound must not be beaten by more
    // than a factor ~1.5 anywhere.
    EXPECT_LE(measured, std::max(1.5 * bound, 0.02)) << "gamma=" << gamma;
  }
}

TEST(EbfEstimator, FcProfileGetsFiniteDeltaNearItsBurstiness) {
  net::FcOnOffRate link(1000.0, 300.0, 0.5);
  EbfEstimatorOptions opt;
  opt.delta_quantile = 0.95;
  const auto fit = estimate_ebf(link, 1000.0, opt);
  // The deterministic FC profile's deficit never exceeds its delta.
  EXPECT_LE(fit.max_observed_deficit, 300.0 + 1e-6);
  EXPECT_LE(fit.params.delta, 300.0 + 1e-6);
}

TEST(EbfEstimator, ValidatesArguments) {
  net::ConstantRate link(100.0);
  EXPECT_THROW(estimate_ebf(link, 0.0), std::invalid_argument);
  EbfEstimatorOptions opt;
  opt.window_lengths.clear();
  EXPECT_THROW(estimate_ebf(link, 100.0, opt), std::invalid_argument);
}

}  // namespace
}  // namespace sfq::qos
