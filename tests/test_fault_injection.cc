// Fault subsystem (src/fault/, docs/ROBUSTNESS.md): DegradedRate math,
// FaultPlan validation and composition, injected loss/corruption, and the
// paper's theorems exercised on a link that fails mid-run:
//   * Theorem 1 holds for ANY server rate behaviour, so the fairness bound
//     must survive an outage + brown-out;
//   * a constant-C link with one outage of duration D is FC(C, C*D), so
//     Theorem 2's throughput bound applies across the outage;
//   * same seed + same fault plan => byte-identical JSONL traces.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "config/experiment.h"
#include "core/sfq_scheduler.h"
#include "fault/degraded_rate.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/bounds.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "stats/service_recorder.h"
#include "traffic/sources.h"

namespace sfq {
namespace {

using fault::DegradedRate;
using fault::FaultInjector;
using fault::FaultPlan;

std::unique_ptr<DegradedRate> degraded(
    double rate, std::vector<DegradedRate::Change> changes) {
  return std::make_unique<DegradedRate>(
      std::make_unique<net::ConstantRate>(rate), std::move(changes));
}

// --- DegradedRate --------------------------------------------------------

TEST(DegradedRate, IdentityWhenNoChanges) {
  auto r = degraded(100.0, {});
  EXPECT_DOUBLE_EQ(r->finish_time(0.0, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(r->work(1.0, 3.0), 200.0);
  EXPECT_DOUBLE_EQ(r->average_rate(), 100.0);
}

TEST(DegradedRate, TransmissionStallsThroughOutage) {
  // 100 b/s, dead during [1,2). 150 bits starting at t=0: 100 bits by t=1,
  // stall, remaining 50 bits land at t=2.5.
  auto r = degraded(100.0, {{1.0, 0.0}, {2.0, 1.0}});
  EXPECT_DOUBLE_EQ(r->finish_time(0.0, 150.0), 2.5);
  EXPECT_DOUBLE_EQ(r->work(0.0, 3.0), 200.0);
  EXPECT_DOUBLE_EQ(r->work(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(r->factor_at(1.5), 0.0);
  EXPECT_DOUBLE_EQ(r->factor_at(2.0), 1.0);
}

TEST(DegradedRate, BrownOutHalvesTheRate) {
  auto r = degraded(100.0, {{1.0, 0.5}, {3.0, 1.0}});
  // 100 bits in [0,1), then 50 b/s: another 100 bits takes 2 s.
  EXPECT_DOUBLE_EQ(r->finish_time(0.0, 200.0), 3.0);
  EXPECT_DOUBLE_EQ(r->work(0.0, 3.0), 200.0);
  // Nominal capacity is unchanged (FC parameters describe the healthy link).
  EXPECT_DOUBLE_EQ(r->average_rate(), 100.0);
}

TEST(DegradedRate, FinishInsideDegradedSegment) {
  auto r = degraded(100.0, {{1.0, 0.5}});
  EXPECT_DOUBLE_EQ(r->finish_time(0.0, 125.0), 1.5);
  EXPECT_DOUBLE_EQ(r->finish_time(2.0, 100.0), 4.0);
}

TEST(DegradedRate, ForeverDownThrows) {
  auto r = degraded(100.0, {{1.0, 0.0}});
  EXPECT_DOUBLE_EQ(r->finish_time(0.0, 50.0), 0.5);  // finishes before
  EXPECT_THROW(r->finish_time(0.0, 150.0), std::runtime_error);
  EXPECT_DOUBLE_EQ(r->work(0.0, 10.0), 100.0);
}

TEST(DegradedRate, RejectsBadTimelines) {
  EXPECT_THROW(degraded(100.0, {{2.0, 1.0}, {1.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(degraded(100.0, {{1.0, -0.5}}), std::invalid_argument);
  EXPECT_THROW(degraded(100.0, {{-1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(DegradedRate(nullptr, {}), std::invalid_argument);
}

// --- FaultPlan -----------------------------------------------------------

TEST(FaultPlan, ValidatesEagerly) {
  FaultPlan p;
  EXPECT_THROW(p.link_down(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(p.degrade(0.0, 1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(p.degrade(0.0, 1.0, -0.1), std::invalid_argument);
  EXPECT_THROW(p.loss(0.0, 1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(p.flow_leave(-1.0, 0), std::invalid_argument);
  EXPECT_TRUE(p.empty());
}

TEST(FaultPlan, ModulationComposesOverlapsWithMin) {
  // Degrade to 0.5 over [1,4), full outage [2,3): the outage wins inside.
  FaultPlan p;
  p.degrade(1.0, 4.0, 0.5).link_down(2.0, 3.0);
  const auto mod = p.modulation();
  ASSERT_EQ(mod.size(), 5u);
  EXPECT_DOUBLE_EQ(mod[0].at, 0.0);
  EXPECT_DOUBLE_EQ(mod[0].factor, 1.0);
  EXPECT_DOUBLE_EQ(mod[1].at, 1.0);
  EXPECT_DOUBLE_EQ(mod[1].factor, 0.5);
  EXPECT_DOUBLE_EQ(mod[2].at, 2.0);
  EXPECT_DOUBLE_EQ(mod[2].factor, 0.0);
  EXPECT_DOUBLE_EQ(mod[3].at, 3.0);
  EXPECT_DOUBLE_EQ(mod[3].factor, 0.5);
  EXPECT_DOUBLE_EQ(mod[4].at, 4.0);
  EXPECT_DOUBLE_EQ(mod[4].factor, 1.0);
}

TEST(FaultPlan, OpenEndedOutageExtendsForever) {
  FaultPlan p;
  p.link_down(2.0);
  const auto mod = p.modulation();
  ASSERT_EQ(mod.size(), 2u);
  EXPECT_DOUBLE_EQ(mod.back().at, 2.0);
  EXPECT_DOUBLE_EQ(mod.back().factor, 0.0);
}

// --- FaultInjector: loss and corruption ----------------------------------

struct LossRun {
  uint64_t emitted = 0;
  uint64_t delivered = 0;
  uint64_t fault_loss = 0;
  uint64_t corrupt = 0;
};

LossRun run_with_loss(double p, bool corrupt) {
  sim::Simulator sim;
  SfqScheduler sched;
  const FlowId f = sched.add_flow(100.0, 100.0);
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(1000.0));
  LossRun out;
  server.set_departure([&](const Packet&, Time) { ++out.delivered; });
  auto emit = [&](Packet pk) { server.inject(std::move(pk)); };
  traffic::CbrSource src(sim, f, emit, 500.0, 100.0);
  src.run(0.0, 10.0);

  FaultPlan plan;
  if (corrupt) plan.corruption(0.0, 10.0, p);
  else plan.loss(0.0, 10.0, p);
  plan.seed(13);
  FaultInjector inj(sim, server, std::move(plan));
  inj.arm();

  sim.run();
  out.emitted = src.emitted();
  out.fault_loss = server.drops(obs::DropCause::kFaultLoss);
  out.corrupt = server.drops(obs::DropCause::kCorrupt);
  return out;
}

TEST(FaultInjector, LossProbabilityOneDropsEverything) {
  const LossRun r = run_with_loss(1.0, /*corrupt=*/false);
  EXPECT_GT(r.emitted, 0u);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.fault_loss, r.emitted);
  EXPECT_EQ(r.corrupt, 0u);
}

TEST(FaultInjector, LossProbabilityZeroDropsNothing) {
  const LossRun r = run_with_loss(0.0, /*corrupt=*/false);
  EXPECT_EQ(r.delivered, r.emitted);
  EXPECT_EQ(r.fault_loss, 0u);
}

TEST(FaultInjector, CorruptionReportsItsOwnCause) {
  const LossRun r = run_with_loss(1.0, /*corrupt=*/true);
  EXPECT_EQ(r.corrupt, r.emitted);
  EXPECT_EQ(r.fault_loss, 0u);
}

TEST(FaultInjector, ArmTwiceThrows) {
  sim::Simulator sim;
  SfqScheduler sched;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(1000.0));
  FaultInjector inj(sim, server, FaultPlan{});
  inj.arm();
  EXPECT_THROW(inj.arm(), std::logic_error);
}

// --- Paper theorems on a faulty link -------------------------------------

struct TheoremRun {
  std::vector<FlowId> ids;
  stats::ServiceRecorder rec;
};

// Two continuously backlogged flows through SFQ on a 1000 b/s link that goes
// dark during [3,4) and runs at quarter rate during [6,7).
std::unique_ptr<TheoremRun> run_theorem_workload(FaultPlan plan) {
  auto out = std::make_unique<TheoremRun>();
  sim::Simulator sim;
  SfqScheduler sched;
  const double l = 100.0;
  out->ids.push_back(sched.add_flow(250.0, l));
  out->ids.push_back(sched.add_flow(750.0, l));
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(1000.0));
  server.set_recorder(&out->rec);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource sa(sim, out->ids[0], emit, 500.0, l);
  traffic::CbrSource sb(sim, out->ids[1], emit, 1500.0, l);
  sa.run(0.0, 10.0);
  sb.run(0.0, 10.0);
  FaultInjector inj(sim, server, std::move(plan));
  inj.arm();
  sim.run_until(10.0);
  sim.run();  // drain the backlog built up during the outage
  out->rec.finish(sim.now());
  return out;
}

TEST(FaultTheorems, Theorem1FairnessSurvivesOutageAndBrownOut) {
  FaultPlan plan;
  plan.link_down(3.0, 4.0).degrade(6.0, 7.0, 0.25);
  auto r = run_theorem_workload(std::move(plan));
  const double h =
      stats::empirical_fairness(r->rec, r->ids[0], 250.0, r->ids[1], 750.0);
  // Theorem 1 makes no assumption about the server's rate behaviour, so the
  // bound is unchanged by the faults.
  EXPECT_LE(h, qos::sfq_fairness_bound(100.0, 250.0, 100.0, 750.0) + 1e-9);
  EXPECT_GT(h, 0.0);
}

TEST(FaultTheorems, Theorem2ThroughputHoldsOnOutageLink) {
  // A constant-C link with a single outage of duration D delivers
  // W(t1,t2) >= C(t2-t1) - C*D in every interval: it is FC(C, C*D).
  FaultPlan plan;
  plan.link_down(3.0, 4.0);
  auto r = run_theorem_workload(std::move(plan));
  const qos::FcParams fc{1000.0, 1000.0 * 1.0};
  const double sum_lmax = 200.0, l = 100.0;
  const std::vector<std::pair<Time, Time>> windows = {
      {0.0, 10.0}, {1.0, 5.0}, {2.5, 4.5}, {3.0, 8.0}};
  for (const auto& [t1, t2] : windows) {
    EXPECT_GE(r->rec.served_bits(r->ids[0], t1, t2) + 1e-6,
              qos::sfq_fc_throughput_lower_bound(fc, 250.0, sum_lmax, l, t1, t2))
        << "window [" << t1 << "," << t2 << "]";
    EXPECT_GE(r->rec.served_bits(r->ids[1], t1, t2) + 1e-6,
              qos::sfq_fc_throughput_lower_bound(fc, 750.0, sum_lmax, l, t1, t2))
        << "window [" << t1 << "," << t2 << "]";
  }
}

// --- Determinism under faults --------------------------------------------

TEST(FaultDeterminism, SameSeedAndPlanGiveByteIdenticalTraces) {
  const char* conf = R"(
scheduler SFQ
link rate=1Mbps buffer=16 policy=pushout
duration 3s
trace invariants=on
fault link down=1s up=1.5s
fault loss p=0.1 from=0s until=3s seed=7
flow name=a kind=poisson rate=600Kbps packet=1000B seed=3
flow name=b kind=greedy  packet=1500B weight=400Kbps leave=1.2s join=2s
)";
  auto run = [&](const std::string& path) {
    std::istringstream in(conf);
    auto spec = config::ExperimentSpec::parse(in);
    spec.obs.trace_jsonl = path;
    const auto r = config::run_experiment(spec);
    EXPECT_EQ(r.invariant_violations, 0u) << r.invariant_report;
    return r;
  };
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string p1 = std::string(::testing::TempDir()) + "fault_det_1.jsonl";
  const std::string p2 = std::string(::testing::TempDir()) + "fault_det_2.jsonl";
  const auto r1 = run(p1);
  const auto r2 = run(p2);
  const std::string t1 = slurp(p1), t2 = slurp(p2);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);

  // The run actually exercised the fault machinery.
  bool saw_fault_loss = false;
  for (const auto& [cause, n] : r1.drop_causes)
    if (cause == "fault_loss" && n > 0) saw_fault_loss = true;
  EXPECT_TRUE(saw_fault_loss);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

}  // namespace
}  // namespace sfq
