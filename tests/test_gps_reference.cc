// Property test: the exact event-driven GPS virtual time (sched/gps_virtual_time)
// against a brute-force numerical integration of eq. (3). The reference
// advances in tiny fixed steps, draining every fluid-backlogged flow in
// proportion to its weight; agreement across random workloads validates the
// departure-epoch walk that WFQ and FQS depend on.
#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <vector>

#include "sched/gps_virtual_time.h"

namespace sfq {
namespace {

class ReferenceGps {
 public:
  ReferenceGps(double capacity, std::vector<double> weights, double dt)
      : c_(capacity), w_(std::move(weights)), dt_(dt) {
    fluid_.resize(w_.size());
    last_finish_.resize(w_.size(), 0.0);
  }

  // Advances the numerical integration to time t.
  void integrate(Time t) {
    while (now_ + dt_ <= t + 1e-15) {
      double wsum = 0.0;
      for (std::size_t i = 0; i < w_.size(); ++i)
        if (!fluid_[i].empty()) wsum += w_[i];
      if (wsum > 0.0) {
        v_ += dt_ * c_ / wsum;
        for (std::size_t i = 0; i < w_.size(); ++i) {
          if (fluid_[i].empty()) continue;
          double quota = dt_ * c_ * w_[i] / wsum;
          while (quota > 0.0 && !fluid_[i].empty()) {
            double& head = fluid_[i].front();
            const double eat = std::min(head, quota);
            head -= eat;
            quota -= eat;
            if (head <= 1e-12) fluid_[i].pop_front();
          }
        }
      }
      now_ += dt_;
    }
  }

  struct Tags {
    VirtualTime start, finish;
  };
  Tags on_arrival(std::size_t flow, double bits, Time t) {
    integrate(t);
    const VirtualTime s = std::max(v_, last_finish_[flow]);
    const VirtualTime f = s + bits / w_[flow];
    last_finish_[flow] = f;
    fluid_[flow].push_back(bits);
    return {s, f};
  }

  VirtualTime vtime() const { return v_; }

 private:
  double c_;
  std::vector<double> w_;
  double dt_;
  Time now_ = 0.0;
  VirtualTime v_ = 0.0;
  std::vector<std::deque<double>> fluid_;
  std::vector<VirtualTime> last_finish_;
};

class GpsAgainstReference : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GpsAgainstReference, TagsAndVirtualTimeAgree) {
  std::mt19937_64 rng(GetParam());
  const double capacity = 1000.0;
  std::uniform_real_distribution<double> wdist(0.5, 8.0);
  const std::size_t n = 2 + rng() % 4;
  std::vector<double> weights;
  for (std::size_t i = 0; i < n; ++i) weights.push_back(wdist(rng));

  GpsVirtualTime exact(capacity);
  for (double w : weights) exact.add_flow(w);
  const double dt = 1e-5;
  ReferenceGps ref(capacity, weights, dt);

  std::exponential_distribution<double> gap(200.0);
  std::uniform_real_distribution<double> len(1.0, 30.0);
  Time t = 0.0;
  // The reference accumulates O(dt) error per event; tolerance scales with
  // the step and the max slope C/min(w).
  const double tol = dt * capacity / 0.5 * 4.0;
  for (int i = 0; i < 400; ++i) {
    t += gap(rng);
    // Snap arrivals to the integration grid so both systems see identical
    // inputs.
    t = std::round(t / dt) * dt;
    const std::size_t flow = rng() % n;
    const double bits = len(rng);
    const auto a = exact.on_arrival(static_cast<uint32_t>(flow), bits, t);
    const auto b = ref.on_arrival(flow, bits, t);
    ASSERT_NEAR(a.start, b.start, tol) << "arrival " << i << " seed "
                                       << GetParam();
    ASSERT_NEAR(a.finish, b.finish, tol);
    ASSERT_NEAR(exact.vtime(), ref.vtime(), tol);
  }
  // And at a few quiet points past the last arrival.
  for (double extra : {0.01, 0.1, 1.0}) {
    const Time probe = std::round((t + extra) / dt) * dt;
    ref.integrate(probe);
    ASSERT_NEAR(exact.advance(probe), ref.vtime(), tol);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpsAgainstReference,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace sfq
