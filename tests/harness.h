// Shared helpers for scheduler tests: run a discipline on a server with a
// mixed workload and return the exact service record.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/eat.h"
#include "sim/simulator.h"
#include "stats/delay_stats.h"
#include "stats/service_recorder.h"
#include "traffic/sink.h"
#include "traffic/sources.h"

namespace sfq::test {

enum class Kind { kGreedy, kPoisson, kCbr, kOnOff };

struct FlowCfg {
  double weight;          // r_f (bits/s)
  double packet_bits;
  Kind kind = Kind::kGreedy;
  double rate = 0.0;      // offered rate; 0 => 2x weight for greedy
  Time start = 0.0;
  Time stop = -1.0;       // -1 => full duration
};

struct RunResult {
  std::vector<FlowId> ids;
  stats::ServiceRecorder recorder;
  traffic::PacketSink sink;
  stats::DelayStats queueing_delay;    // departure - arrival at server
  std::vector<Time> max_eat_lateness;  // per cfg index: max(depart - EAT)
  Time end = 0.0;
};

// Runs `sched` on a server with the given rate profile. Greedy flows offer
// well above their weight so they stay continuously backlogged. Collects the
// recorder, sink, queueing delays, and per-flow max lateness past the EAT
// (eq. 37) so callers can check the paper's delay theorems directly.
inline std::unique_ptr<RunResult> run_workload(
    Scheduler& sched, std::unique_ptr<net::RateProfile> profile,
    const std::vector<FlowCfg>& cfgs, Time duration, uint64_t seed = 1) {
  auto result = std::make_unique<RunResult>();
  sim::Simulator sim;
  net::ScheduledServer server(sim, sched, std::move(profile));
  server.set_recorder(&result->recorder);

  for (const FlowCfg& c : cfgs) {
    FlowId id = sched.add_flow(c.weight, c.packet_bits);
    result->ids.push_back(id);
    result->max_eat_lateness.push_back(-kTimeInfinity);
  }
  const FlowId max_id =
      *std::max_element(result->ids.begin(), result->ids.end());

  // EAT(p^j) per flow, indexed by the source's 1-based seq.
  std::vector<std::vector<Time>> eats(max_id + 1);
  std::vector<std::size_t> cfg_of_flow(max_id + 1, 0);
  for (std::size_t i = 0; i < cfgs.size(); ++i)
    cfg_of_flow[result->ids[i]] = i;
  qos::PerFlowEat eat;

  server.set_departure([&, r = result.get()](const Packet& p, Time t) {
    r->sink.deliver(p, t);
    r->queueing_delay.add(p.flow, t - p.arrival);
    const Time e = eats[p.flow][p.seq - 1];
    Time& m = r->max_eat_lateness[cfg_of_flow[p.flow]];
    if (t - e > m) m = t - e;
  });

  auto emit = [&](Packet p) {
    const double rate = p.rate > 0.0 ? p.rate : sched.flows().weight(p.flow);
    eats[p.flow].push_back(
        eat.on_arrival(p.flow, sim.now(), p.length_bits, rate));
    server.inject(std::move(p));
  };

  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const FlowCfg& c = cfgs[i];
    const FlowId id = result->ids[i];
    const double offered = c.rate > 0.0 ? c.rate : 2.0 * c.weight;
    switch (c.kind) {
      case Kind::kGreedy:
      case Kind::kCbr:
        sources.push_back(std::make_unique<traffic::CbrSource>(
            sim, id, emit, offered, c.packet_bits));
        break;
      case Kind::kPoisson:
        sources.push_back(std::make_unique<traffic::PoissonSource>(
            sim, id, emit, offered, c.packet_bits, seed + i));
        break;
      case Kind::kOnOff:
        sources.push_back(std::make_unique<traffic::OnOffSource>(
            sim, id, emit, offered, c.packet_bits, /*mean_on=*/0.05,
            /*mean_off=*/0.05, seed + i));
        break;
    }
    const Time stop = c.stop < 0.0 ? duration : c.stop;
    sources.back()->run(c.start, stop);
  }

  sim.run_until(duration);
  // Drain queued packets so delay bounds see complete information.
  sim.run();
  result->end = sim.now();
  result->recorder.finish(sim.now());
  return result;
}

}  // namespace sfq::test
