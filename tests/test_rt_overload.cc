// Overload hardening (docs/ROBUSTNESS.md): the Normal/Shedding/Critical
// admission machine and its weighted-fair token buckets, producer
// backpressure with bounded retry/backoff/deadline, the watchdog's
// detect -> diagnose -> recover escalation under injected rt faults
// (dispatcher pauses, clock jumps), and ledger conservation across every
// one of those paths — including a permanently wedged dispatcher with ring
// leftovers under both overflow policies. Anything timing-sensitive asserts
// ledger identities (exact by construction) rather than exact timings.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "obs/telemetry/telemetry.h"
#include "rt/engine.h"
#include "rt/load_gen.h"
#include "stats/fairness.h"

namespace sfq::rt {
namespace {

namespace tel = obs::telemetry;

constexpr double kBits = 8000.0;

Packet make_packet(FlowId flow, uint64_t seq, double bits = kBits) {
  Packet p{};
  p.flow = flow;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

uint64_t cause(const EngineStats& s, obs::DropCause c) {
  return s.drops[static_cast<std::size_t>(c)];
}

// The shed-aware conservation identities (docs/ROBUSTNESS.md): kShed joins
// kUnknownFlow/kBufferLimit on the pre-enqueue side of the ledger.
void expect_shed_ledger(const EngineStats& s) {
  EXPECT_EQ(s.ingress_pushed,
            s.accepted + cause(s, obs::DropCause::kUnknownFlow) +
                cause(s, obs::DropCause::kBufferLimit) +
                cause(s, obs::DropCause::kShed) + s.abandoned);
  EXPECT_EQ(s.accepted, s.transmitted + s.backlog +
                            cause(s, obs::DropCause::kPushout) +
                            cause(s, obs::DropCause::kFlowRemoved));
}

// Spin (bounded) until `pred()` holds; fails the test instead of hanging.
template <typename Pred>
void wait_for(Pred pred, const char* what, double timeout_s = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Accepts packets but never serves them — the permanent wedge no restart
// can fix (same pathology test_rt_engine.cc uses).
class HoardingScheduler final : public SfqScheduler {
 public:
  using SfqScheduler::SfqScheduler;
  std::optional<Packet> dequeue(Time) override { return std::nullopt; }
};

// Admission control enabled but never triggered must be inert: no shed
// drops, state pinned at Normal, every packet transmitted. (The matching
// "costs <= 5% when untriggered" claim is bench_rt_engine's gate.)
TEST(RtOverload, AdmissionEnabledButUntriggeredIsInert) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  // A 200-packet burst against a 2048 cap peaks at ~10% occupancy — far
  // below shed_enter, so the machine must never leave Normal.
  opts.buffer_limit = 2048;
  opts.admission_control = true;
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e8), opts);
  engine.start();
  for (uint64_t i = 0; i < 200; ++i)
    EXPECT_TRUE(engine.offer_wait(0, make_packet(0, i)));
  wait_for([&] { return engine.stats().transmitted == 200u; },
           "light load never finished");
  EXPECT_EQ(engine.overload_state(), 0);
  engine.stop(StopMode::kDrain);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.transmitted, 200u);
  EXPECT_EQ(cause(s, obs::DropCause::kShed), 0u);
  EXPECT_EQ(s.overload_state, 0);
  expect_shed_ledger(s);
}

// Theorem 1 past saturation: two paced flows with weights 3:1 offer twice
// the link capacity with admission control on. The machine must enter
// shedding, refuse the excess as kShed, and — because the buckets refill in
// weight proportion — keep the normalized service gap of the *admitted*
// traffic within the paper bound. Slack: shed_burst token-bucket quanta per
// flow (the burst a freshly refilled bucket may admit back-to-back) on top
// of the usual one-in-flight quantum.
TEST(RtOverload, SheddingUnder2xLoadKeepsAdmittedTrafficWithinTheorem1) {
  const double rf = 6e6, rm = 2e6, cap = 8e6;
  SfqScheduler sched;
  sched.add_flow(rf, kBits);
  sched.add_flow(rm, kBits);

  EngineOptions opts;
  opts.producers = 2;
  opts.buffer_limit = 64;
  opts.admission_control = true;
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(cap), opts);
  tel::Telemetry plane;
  engine.set_telemetry(&plane);

  std::vector<std::vector<FlowLoad>> producers(2);
  for (FlowId f = 0; f < 2; ++f) {
    FlowLoad l;
    l.flow = f;
    l.rate = 2.0 * (f == 0 ? rf : rm);  // 2x capacity in weight proportion
    l.packet_bits = kBits;
    producers[f].push_back(l);
  }

  engine.start();
  const Time t0 = engine.now();
  LoadGen gen(engine, std::move(producers), {});  // paced
  gen.start(/*duration=*/1.0);

  std::vector<std::vector<double>> snaps;
  int max_state = 0;
  while (engine.now() - t0 < 1.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    snaps.push_back(engine.service_snapshot());
    max_state = std::max(max_state, engine.overload_state());
  }
  gen.join();
  engine.stop(StopMode::kDrain);

  const EngineStats s = engine.stats();
  EXPECT_GE(max_state, 1) << "overload machine never left Normal";
  EXPECT_GT(cause(s, obs::DropCause::kShed), 0u);
  expect_shed_ledger(s);

  // Admitted-traffic fairness on the middle half of the run.
  const double bound = stats::sfq_fairness_bound(kBits, rf, kBits, rm);
  const double slack = (opts.shed_burst + 1.0) * (kBits / rf + kBits / rm);
  const std::size_t lo = snaps.size() / 4;
  const std::size_t hi = snaps.size() - snaps.size() / 4;
  ASSERT_GT(hi, lo + 2) << "too few snapshots";
  double worst = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t j = i + 1; j < hi; ++j) {
      const double gap = std::abs((snaps[j][0] - snaps[i][0]) / rf -
                                  (snaps[j][1] - snaps[i][1]) / rm);
      worst = std::max(worst, gap);
    }
  }
  EXPECT_LE(worst, bound + slack)
      << "admitted-traffic gap " << worst << "s over Theorem-1 bound "
      << bound << "s (+" << slack << "s shed-burst slack)";
  // Service split lands near the 3:1 weight ratio despite the shedding.
  EXPECT_GT(engine.flow_tx_bits(1), 0.0);
  const double ratio = engine.flow_tx_bits(0) / engine.flow_tx_bits(1);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);

  // The telemetry plane mirrors the engine's per-cause ledger bit-exactly,
  // shed included.
  const tel::TelemetrySnapshot snap = plane.snapshot();
  for (std::size_t c = 1; c < obs::kDropCauseCount; ++c) {
    const auto dc = static_cast<obs::DropCause>(c);
    EXPECT_EQ(snap.counter_total(tel::drop_counter(dc)), s.drops[c])
        << "cause " << c;
  }
  EXPECT_EQ(snap.counter_total(tel::CounterId::kTransmitted), s.transmitted);
}

// Hysteresis: a burst pushes the machine into Shedding/Critical, arrivals
// during that window are shed through the token buckets, and once the
// backlog drains below shed_exit the machine returns to Normal on its own.
TEST(RtOverload, HysteresisReturnsToNormalAfterTheBurst) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.buffer_limit = 16;
  opts.admission_control = true;
  // 10 ms per packet: the drain is slow enough to observe every state.
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(8e5), opts);
  engine.start();
  for (uint64_t i = 0; i < 60; ++i)
    EXPECT_TRUE(engine.offer(0, make_packet(0, i)));

  int max_state = 0;
  wait_for(
      [&] {
        max_state = std::max(max_state, engine.overload_state());
        return max_state >= 1;
      },
      "burst never tripped the overload machine");
  // Arrivals while shedding pass through the (now exhausted after ~burst
  // packets) token bucket: most are refused as kShed before the buffer
  // limit is even consulted.
  for (uint64_t i = 0; i < 20; ++i)
    EXPECT_TRUE(engine.offer(0, make_packet(0, 100 + i)));
  wait_for([&] { return cause(engine.stats(), obs::DropCause::kShed) > 0; },
           "shedding state refused nothing");
  wait_for([&] { return engine.overload_state() == 0; },
           "machine never relaxed back to Normal");
  engine.stop(StopMode::kDrain);

  const EngineStats s = engine.stats();
  EXPECT_GE(max_state, 1);
  EXPECT_EQ(s.overload_state, 0);
  EXPECT_GT(cause(s, obs::DropCause::kShed), 0u);
  EXPECT_GT(cause(s, obs::DropCause::kBufferLimit), 0u);  // the raw burst
  expect_shed_ledger(s);
}

// A scripted dispatcher pause longer than the stall timeout must be
// detected as a stall and healed by the watchdog: service resumes, the
// episode is counted as a recovery, and the engine does NOT end stalled.
TEST(RtOverload, PauseFaultIsDetectedAndRecovered) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.stall_timeout = 0.03;  // > the 10 ms per-packet service time
  opts.fault_plan.pauses.push_back({/*at=*/0.05, /*duration=*/0.12});
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(8e5), opts);
  engine.start();
  for (uint64_t i = 0; i < 30; ++i)
    EXPECT_TRUE(engine.offer_wait(0, make_packet(0, i)));
  wait_for([&] { return engine.stats().transmitted == 30u; },
           "service never resumed after the pause");
  engine.stop(StopMode::kDrain);

  const EngineStats s = engine.stats();
  EXPECT_GE(s.stalls, 1u);
  EXPECT_EQ(s.recoveries, s.stalls);  // every episode healed
  EXPECT_FALSE(engine.stalled());
  EXPECT_EQ(s.transmitted, 30u);
  EXPECT_EQ(s.backlog, 0u);
  expect_shed_ledger(s);
}

// Clock faults: a forward jump ages the pacing deadline harmlessly; the
// backward jump freezes the engine's time axis (monotone clamp), parking
// `now` just short of the next deadline. The watchdog — which runs on the
// raw axis precisely so faults cannot blind it — must re-pace the wedged
// transmission and limp through the frozen window without losing a packet.
TEST(RtOverload, ClockJumpsRecoverWithExactConservation) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.stall_timeout = 0.03;
  opts.fault_plan.jumps.push_back({/*at=*/0.02, /*delta=*/0.3});
  opts.fault_plan.jumps.push_back({/*at=*/0.06, /*delta=*/-0.2});
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(8e5), opts);
  engine.start();
  for (uint64_t i = 0; i < 25; ++i)
    EXPECT_TRUE(engine.offer_wait(0, make_packet(0, i)));
  wait_for([&] { return engine.stats().transmitted == 25u; },
           "service never resumed after the clock jumps", 10.0);
  engine.stop(StopMode::kDrain);

  const EngineStats s = engine.stats();
  EXPECT_GE(s.stalls, 1u) << "frozen clock never tripped the raw-axis dog";
  EXPECT_GE(s.recoveries, 1u);
  EXPECT_FALSE(engine.stalled());
  EXPECT_EQ(s.transmitted, 25u);
  EXPECT_DOUBLE_EQ(s.tx_bits, 25 * kBits);
  // Net transform is +0.1 s: the engine axis runs ahead of the raw axis.
  EXPECT_GE(engine.now(), engine.clock().raw_now());
  expect_shed_ledger(s);
}

// Deterministic permanent-wedge conservation, with ring leftovers. The
// scripted timeline (raw axis):
//   [0.00, 0.25)  pause 1 — the dispatcher is frozen before its first drain;
//                 20 offers land on the capacity-8 ring: 8 pushed, 12
//                 counted ingress drops at the ring mouth.
//   ~0.25         drain: 8 injects resolve against buffer_limit=2 under the
//                 policy being tested; the hoarding scheduler then defeats
//                 every dequeue.
//   [0.26, 0.56)  pause 2 — 5 more offers sit in the ring with nobody
//                 draining.
//   ~0.56         the watchdog (budget 0) fires once and stops permanently:
//                 ring leftovers become `abandoned`, backlog stays visible.
EngineStats run_permanent_wedge(net::OverloadPolicy policy) {
  HoardingScheduler sched;
  sched.add_flow(1e6, kBits);
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.ring_capacity = 8;
  opts.buffer_limit = 2;
  opts.overload_policy = policy;
  opts.stall_timeout = 0.05;
  opts.restart_budget = 0;
  opts.fault_plan.pauses.push_back({/*at=*/0.0, /*duration=*/0.25});
  opts.fault_plan.pauses.push_back({/*at=*/0.26, /*duration=*/0.3});
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e9), opts);
  engine.start();
  for (uint64_t i = 0; i < 20; ++i)
    engine.offer(0, make_packet(i % 2, i));  // 8 pushed, 12 ring-full drops
  wait_for([&] { return engine.stats().ingress_pushed >= 8u &&
                        engine.stats().accepted +
                                engine.stats().dropped() >= 8u; },
           "pause 1 never ended / drain never ran");
  // Inside pause 2: refill the ring so the final wedge has leftovers.
  wait_for([&] { return engine.clock().raw_now() >= 0.28; }, "raw clock");
  for (uint64_t i = 0; i < 5; ++i)
    EXPECT_TRUE(engine.offer(0, make_packet(i % 2, 100 + i)));
  wait_for([&] { return engine.stalled(); }, "watchdog never gave up");
  EXPECT_FALSE(engine.offer(0, make_packet(0, 999)));
  engine.stop(StopMode::kAbandon);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.ingress_pushed, 13u);
  EXPECT_GE(s.ingress_drops, 13u);  // 12 ring-full + the post-stall refusal
  EXPECT_EQ(s.abandoned, 5u);       // ring leftovers, counted not lost
  EXPECT_EQ(s.transmitted, 0u);
  EXPECT_EQ(s.backlog, 2u);
  EXPECT_EQ(s.stalls, 1u);
  EXPECT_EQ(s.recoveries, 0u);
  expect_shed_ledger(s);
  return s;
}

TEST(RtOverload, PermanentWedgeConservesLedgerUnderTailDrop) {
  const EngineStats s = run_permanent_wedge(net::OverloadPolicy::kTailDrop);
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(cause(s, obs::DropCause::kBufferLimit), 6u);
  EXPECT_EQ(cause(s, obs::DropCause::kPushout), 0u);
}

TEST(RtOverload, PermanentWedgeConservesLedgerUnderPushout) {
  const EngineStats s = run_permanent_wedge(net::OverloadPolicy::kPushout);
  EXPECT_EQ(s.accepted, 8u);
  EXPECT_EQ(cause(s, obs::DropCause::kPushout), 6u);
  EXPECT_EQ(cause(s, obs::DropCause::kBufferLimit), 0u);
}

// Producer backpressure end to end: a paused dispatcher leaves the tiny
// ring full, try_offer reports kBackpressure, and LoadGen's bounded
// retry/backoff gives up stale packets as `abandoned`. Every attempt is
// accounted on both the producer and the engine ledgers, and the retry /
// abandon telemetry counters match the producer's own tallies exactly.
TEST(RtOverload, BackpressureRetryAndDeadlineKeepTheLedgerExact) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.ring_capacity = 2;
  opts.fault_plan.pauses.push_back({/*at=*/0.0, /*duration=*/0.15});
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(8e6), opts);
  tel::Telemetry plane;
  engine.set_telemetry(&plane);

  FlowLoad l;
  l.flow = 0;
  l.rate = 8e5;  // 100 packets/s of model time
  l.packet_bits = kBits;
  LoadGenOptions lg;
  lg.paced = false;
  lg.max_retries = 3;
  lg.backoff_initial = 1e-3;
  lg.backoff_max = 4e-3;
  lg.offer_deadline = 0.05;

  engine.start();
  LoadGen gen(engine, {{l}}, lg);
  gen.start(/*duration=*/0.5);  // 50 packets, blasted against the pause
  gen.join();
  engine.stop(StopMode::kDrain);

  const LoadGen::ProducerStats ps = gen.producer_stats(0);
  EXPECT_EQ(ps.attempts, 50u);
  EXPECT_EQ(ps.dropped, 0u);  // retry mode never silently drops
  EXPECT_EQ(ps.attempts, ps.pushed + ps.dropped + ps.abandoned);
  EXPECT_GT(ps.retries, 0u);
  EXPECT_GT(ps.abandoned, 0u) << "the pause should have forced abandons";
  EXPECT_GT(ps.pushed, 0u) << "post-pause offers should succeed";

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.ingress_pushed, ps.pushed);
  EXPECT_EQ(s.ingress_drops, ps.abandoned);  // resolved on the engine ledger
  EXPECT_EQ(s.transmitted, ps.pushed);       // drain served every admit
  expect_shed_ledger(s);

  const tel::TelemetrySnapshot snap = plane.snapshot();
  EXPECT_EQ(snap.counter_total(tel::CounterId::kOfferRetries), ps.retries);
  EXPECT_EQ(snap.counter_total(tel::CounterId::kOfferAbandoned),
            ps.abandoned);
  EXPECT_EQ(snap.counter_total(tel::CounterId::kIngressPushed), ps.pushed);
}

}  // namespace
}  // namespace sfq::rt
