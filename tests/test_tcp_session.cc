#include <gtest/gtest.h>

#include <memory>

#include "core/sfq_scheduler.h"
#include "net/network.h"
#include "net/rate_profile.h"
#include "sim/simulator.h"
#include "traffic/sources.h"
#include "traffic/tcp_session.h"

namespace sfq::traffic {
namespace {

std::unique_ptr<net::TandemNetwork> two_hop(sim::Simulator& sim,
                                            double bottleneck) {
  std::vector<net::TandemNetwork::Hop> hops;
  for (int i = 0; i < 2; ++i) {
    net::TandemNetwork::Hop h;
    h.scheduler = std::make_unique<SfqScheduler>();
    h.profile = std::make_unique<net::ConstantRate>(i == 1 ? bottleneck
                                                           : 4.0 * bottleneck);
    h.propagation_to_next = i == 0 ? 0.005 : 0.0;
    hops.push_back(std::move(h));
  }
  return std::make_unique<net::TandemNetwork>(sim, std::move(hops));
}

TEST(TcpSessionGroup, SingleConnectionFillsMultiHopBottleneck) {
  sim::Simulator sim;
  auto netp = two_hop(sim, 1e5);
  auto& net = *netp;
  TcpSessionGroup group(sim, net);
  TcpRenoSource::Params p;
  p.packet_bits = 1000.0;
  p.max_window = 128.0;
  const FlowId f = group.add_session(1.0, p, 0.005, 0.0, "tcp");
  sim.run_until(20.0);
  const double goodput = group.delivered(f) * p.packet_bits / 20.0;
  EXPECT_GT(goodput, 0.85 * 1e5);
  EXPECT_EQ(group.source(f).timeouts(), 0u);
}

TEST(TcpSessionGroup, TwoConnectionsShareUnderSfq) {
  sim::Simulator sim;
  auto netp = two_hop(sim, 2e5);
  auto& net = *netp;
  TcpSessionGroup group(sim, net);
  TcpRenoSource::Params p;
  p.packet_bits = 1600.0;
  p.max_window = 200.0;
  const FlowId a = group.add_session(1.0, p, 0.004, 0.0, "a");
  const FlowId b = group.add_session(1.0, p, 0.004, 3.0, "b");
  sim.run_until(15.0);

  // Count deliveries after both are up.
  const uint64_t da = group.delivered(a);
  const uint64_t db = group.delivered(b);
  EXPECT_GT(db, 0u);
  // a has a 3 s head start, but SFQ lets b ramp to a comparable share; by
  // t=15 b should have at least a third of a's total.
  EXPECT_GT(static_cast<double>(db), 0.33 * static_cast<double>(da));
}

TEST(TcpSessionGroup, FallbackReceivesForeignFlows) {
  sim::Simulator sim;
  auto netp = two_hop(sim, 1e5);
  auto& net = *netp;
  TcpSessionGroup group(sim, net);
  TcpRenoSource::Params p;
  group.add_session(1.0, p, 0.005, 0.0);

  const FlowId cross = net.add_flow(1.0, 800.0, "cross");
  uint64_t foreign = 0;
  group.set_fallback([&](const Packet& q, Time) {
    EXPECT_EQ(q.flow, cross);
    ++foreign;
  });
  CbrSource src(sim, cross, [&](Packet q) { net.inject(std::move(q)); },
                5e4, 800.0);
  src.run(0.0, 2.0);
  sim.run_until(3.0);
  EXPECT_GT(foreign, 100u);
}

}  // namespace
}  // namespace sfq::traffic
