// Config-parser robustness: every malformed directive must be rejected
// eagerly at parse time with a "line N:" diagnostic, never deferred to a
// crash (or silent misbehaviour) inside run_experiment. Companion positive
// test checks the fault/churn directives land in the spec verbatim.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "config/experiment.h"

using namespace sfq;
using config::ExperimentSpec;

namespace {

// A minimal valid experiment; malformed lines are appended to it so every
// rejection below is attributable to the appended line alone.
const char* kValidBase =
    "scheduler SFQ\n"
    "link rate=1Mbps\n"
    "duration 1s\n"
    "flow name=a kind=cbr rate=100Kbps packet=100B\n";

ExperimentSpec parse_str(const std::string& text) {
  std::istringstream in(text);
  return ExperimentSpec::parse(in);
}

// Asserts the config is rejected with std::invalid_argument whose message
// contains `needle` (and, when expect_lineno, a "line N:" prefix pointing at
// the offending line).
void expect_rejects(const std::string& text, const std::string& needle,
                    bool expect_lineno = true) {
  try {
    parse_str(kValidBase + text);
    FAIL() << "config accepted, expected rejection mentioning '" << needle
           << "':\n"
           << text;
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(needle), std::string::npos)
        << "rejected, but message '" << msg << "' does not mention '" << needle
        << "'";
    if (expect_lineno) {
      EXPECT_EQ(msg.rfind("line ", 0), 0u)
          << "message '" << msg << "' lacks a line-number prefix";
    }
  }
}

}  // namespace

TEST(ConfigRobustness, MalformedNumbersAndUnits) {
  expect_rejects("link rate=fast\n", "cannot parse number", false);
  expect_rejects("link rate=10Tbps\n", "unknown rate unit", false);
  expect_rejects("flow name=b kind=cbr rate=1Kbps packet=100furlongs\n",
                 "unknown size unit", false);
  expect_rejects("duration 5fortnights\n", "unknown time unit", false);
  expect_rejects("link rate=\n", "expected key=value");
  expect_rejects("link =1Mbps\n", "expected key=value");
}

TEST(ConfigRobustness, NegativeAndOutOfRangeValues) {
  expect_rejects("flow name=b kind=cbr rate=1Kbps packet=100B start=-1s\n",
                 "must not be negative");
  expect_rejects("link rate=1Mbps buffer=-1\n", "non-negative integer");
  expect_rejects("flow name=b kind=cbr rate=1Kbps packet=100B seed=-1\n",
                 "non-negative integer");
  expect_rejects("flow name=b kind=cbr rate=1Kbps packet=100B seed=9e9\n",
                 "non-negative integer");
  expect_rejects("duration 0s\n", "duration must be positive");
  expect_rejects("link rate=0bps\n", "link rate must be positive");
  expect_rejects("flow name=b kind=cbr rate=-5Kbps packet=100B\n",
                 "must not be negative");
}

TEST(ConfigRobustness, StructuralErrors) {
  expect_rejects("teleport everyone\n", "unknown directive");
  expect_rejects("link mtu=1500\n", "unknown link key");
  expect_rejects("flow name=b kind=warp rate=1Kbps packet=100B\n",
                 "unknown flow kind");
  expect_rejects("flow name=b kind=cbr packet=100B\n",
                 "flow needs rate= or weight=");
  expect_rejects("flow name=b kind=cbr rate=1Kbps\n", "flow needs packet=");
  expect_rejects("flow name=b kind=cbr rate=1Kbps packet=100B "
                 "start=2s stop=1s\n",
                 "stop= precedes start=");
  expect_rejects("link rate=1Mbps policy=coinflip\n",
                 "policy must be pushout or taildrop");
  EXPECT_THROW(parse_str("scheduler SFQ\nlink rate=1Mbps\nduration 1s\n"),
               std::invalid_argument)
      << "flowless experiment accepted";
  expect_rejects("flow name=a kind=cbr rate=1Kbps packet=100B\n",
                 "duplicate flow name", false);
}

TEST(ConfigRobustness, ChurnKeyValidation) {
  expect_rejects("flow name=b kind=cbr rate=1Kbps packet=100B join=2s\n",
                 "join= needs leave=");
  expect_rejects(
      "flow name=b kind=cbr rate=1Kbps packet=100B leave=3s join=2s\n",
      "join= must come after leave=");
  expect_rejects(
      "flow name=b kind=cbr rate=1Kbps packet=100B leave=3s join=3s\n",
      "join= must come after leave=");
}

TEST(ConfigRobustness, FaultDirectiveValidation) {
  expect_rejects("fault\n", "fault needs a kind");
  expect_rejects("fault quake magnitude=7\n", "unknown fault kind");
  expect_rejects("fault link from=1s until=2s\n",
                 "exactly one of down= or degrade=");
  expect_rejects("fault link down=1s degrade=0.5\n",
                 "exactly one of down= or degrade=");
  expect_rejects("fault link down=2s up=1s\n", "must end after");
  expect_rejects("fault link degrade=1.5 from=1s until=2s\n",
                 "must be in [0,1]");
  expect_rejects("fault link jitter=5ms\n", "unknown fault link key");
  expect_rejects("fault loss from=1s until=2s\n", "fault loss needs p=");
  expect_rejects("fault loss p=2 from=1s until=2s\n", "must be in [0,1]");
  expect_rejects("fault loss p=0.1 until=0s\n", "must end after");
  expect_rejects("fault loss p=0.1 corrupt=maybe\n", "expected on/off");
  expect_rejects("fault loss p=0.1 burst=3\n", "unknown fault loss key");
}

TEST(ConfigRobustness, LineNumbersPointAtTheOffendingLine) {
  // kValidBase is 4 lines; a blank and a comment push the bad line to 7.
  try {
    parse_str(std::string(kValidBase) + "\n# comment\nflow name=b\n");
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).rfind("line 7:", 0), 0u) << e.what();
  }
}

TEST(ConfigRobustness, MissingFileThrowsRuntimeError) {
  EXPECT_THROW(ExperimentSpec::parse_file("/nonexistent/sfq.conf"),
               std::runtime_error);
}

TEST(ConfigRobustness, FaultAndChurnDirectivesRoundTrip) {
  const auto spec = parse_str(
      "scheduler SFQ\n"
      "link rate=1Mbps buffer=32 policy=pushout\n"
      "duration 10s\n"
      "fault link down=3s up=4s\n"
      "fault link degrade=0.25 from=6s until=7s\n"
      "fault loss p=0.02 from=1s until=9s seed=7\n"
      "fault loss p=0.01 corrupt=on\n"
      "flow name=a kind=cbr rate=100Kbps packet=100B\n"
      "flow name=b kind=greedy packet=1500B weight=400Kbps "
      "leave=4.5s join=6.5s\n");
  EXPECT_TRUE(spec.has_faults());
  EXPECT_TRUE(spec.hops.front().pushout);
  EXPECT_EQ(spec.hops.front().buffer_packets, 32u);

  ASSERT_EQ(spec.faults.link.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.faults.link[0].from, 3.0);
  EXPECT_DOUBLE_EQ(spec.faults.link[0].until, 4.0);
  EXPECT_DOUBLE_EQ(spec.faults.link[0].factor, 0.0);  // down => factor 0
  EXPECT_DOUBLE_EQ(spec.faults.link[1].factor, 0.25);

  ASSERT_EQ(spec.faults.loss.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.faults.loss[0].probability, 0.02);
  EXPECT_FALSE(spec.faults.loss[0].corrupt);
  EXPECT_TRUE(spec.faults.loss[1].corrupt);
  EXPECT_EQ(spec.faults.seed, 7u);

  ASSERT_EQ(spec.flows.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.flows[1].leave, 4.5);
  EXPECT_DOUBLE_EQ(spec.flows[1].rejoin, 6.5);
  EXPECT_LT(spec.flows[0].leave, 0.0);  // churn keys default to "never"

  // An open-ended outage parses too (until defaults to infinity).
  const auto open = parse_str(std::string(kValidBase) + "fault link down=3s\n");
  EXPECT_TRUE(open.has_faults());
  EXPECT_GT(open.faults.link[0].until, 1e30);

  // Churn alone (no fault directives) still arms the injector path.
  const auto churn_only = parse_str(
      std::string(kValidBase) +
      "flow name=b kind=cbr rate=1Kbps packet=100B leave=0.5s\n");
  EXPECT_TRUE(churn_only.has_faults());
  EXPECT_TRUE(churn_only.faults.link.empty());
}
