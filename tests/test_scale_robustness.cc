// Scale and numeric-robustness tests: many flows, extreme weights, long
// virtual-time horizons, and stress on the event queue.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sched/scfq_scheduler.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "stats/service_recorder.h"
#include "traffic/sources.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

TEST(Scale, ThousandFlowsRoundRobinUnderSfq) {
  SfqScheduler s;
  const int n = 1000;
  for (int i = 0; i < n; ++i) s.add_flow(1.0);
  // One packet per flow, all equal tags: every flow served exactly once
  // before any is served twice (round-robin at equal weights).
  for (int round = 0; round < 3; ++round)
    for (int i = 0; i < n; ++i)
      s.enqueue(mk(static_cast<FlowId>(i), round + 1, 1.0), 0.0);

  std::vector<int> served(n, 0);
  for (int k = 0; k < n; ++k) {
    auto p = s.dequeue(0.0);
    ASSERT_TRUE(p);
    s.on_transmit_complete(*p, 0.0);
    ++served[p->flow];
  }
  for (int i = 0; i < n; ++i) EXPECT_EQ(served[i], 1) << i;
}

TEST(Scale, ExtremeWeightRatiosStayFair) {
  // 1 : 1e6 weight ratio with tiny and huge packets; Theorem 1 must hold
  // without numeric blowups.
  SfqScheduler s;
  const double w0 = 1e-3, w1 = 1e3;
  const double l0 = 1.0, l1 = 1e6;
  auto run = [&] {
    sim::Simulator sim;
    net::ScheduledServer server(sim, s,
                                std::make_unique<net::ConstantRate>(1e6));
    stats::ServiceRecorder rec;
    server.set_recorder(&rec);
    auto emit = [&](Packet p) { server.inject(std::move(p)); };
    traffic::CbrSource a(sim, 0, emit, 10.0, l0);
    traffic::CbrSource b(sim, 1, emit, 2e6, l1);
    a.run(0.0, 20.0);
    b.run(0.0, 20.0);
    sim.run_until(20.0);
    rec.finish(20.0);
    return stats::empirical_fairness(rec, 0, w0, 1, w1);
  };
  s.add_flow(w0, l0);
  s.add_flow(w1, l1);
  const double h = run();
  EXPECT_LE(h, stats::sfq_fairness_bound(l0, w0, l1, w1) * (1.0 + 1e-12));
  EXPECT_TRUE(std::isfinite(h));
}

TEST(Scale, LongHorizonVirtualTimeStaysMonotone) {
  // Billions of virtual-time units accumulated across busy periods.
  SfqScheduler s;
  FlowId f = s.add_flow(1e-6);  // 1 bit per 1e6 virtual units
  double last_v = 0.0;
  for (int burst = 0; burst < 2000; ++burst) {
    s.enqueue(mk(f, burst + 1, 1000.0), 0.0);
    auto p = s.dequeue(0.0);
    ASSERT_TRUE(p);
    s.on_transmit_complete(*p, 0.0);  // busy period ends, v jumps
    EXPECT_GE(s.vtime(), last_v);
    last_v = s.vtime();
  }
  EXPECT_GT(last_v, 1e12);
  EXPECT_TRUE(std::isfinite(last_v));
}

TEST(Scale, ScfqManyFlowsManyPacketsDrainCleanly) {
  ScfqScheduler s;
  std::mt19937_64 rng(5);
  const int n = 200;
  for (int i = 0; i < n; ++i)
    s.add_flow(1.0 + static_cast<double>(rng() % 100));
  uint64_t enq = 0;
  std::vector<uint64_t> seq(n, 0);
  for (int k = 0; k < 20000; ++k) {
    const FlowId f = static_cast<FlowId>(rng() % n);
    s.enqueue(mk(f, ++seq[f], 1.0 + static_cast<double>(rng() % 1000)), 0.0);
    ++enq;
    if (rng() % 3 == 0) {
      auto p = s.dequeue(0.0);
      ASSERT_TRUE(p);
      s.on_transmit_complete(*p, 0.0);
      --enq;
    }
  }
  while (auto p = s.dequeue(0.0)) {
    s.on_transmit_complete(*p, 0.0);
    --enq;
  }
  EXPECT_EQ(enq, 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Scale, EventQueueStressAgainstReference) {
  sim::EventQueue q;
  std::multimap<Time, int> reference;
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> when(0.0, 100.0);
  std::vector<int> fired;
  int tag = 0;

  std::vector<sim::EventId> ids;
  std::vector<std::pair<Time, int>> meta;
  for (int i = 0; i < 3000; ++i) {
    const Time t = when(rng);
    const int my_tag = tag++;
    ids.push_back(q.schedule(t, [&fired, my_tag] { fired.push_back(my_tag); }));
    meta.emplace_back(t, my_tag);
  }
  // Cancel a random third.
  std::vector<bool> cancelled(ids.size(), false);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (rng() % 3 == 0) {
      q.cancel(ids[i]);
      cancelled[i] = true;
    }
  }
  for (std::size_t i = 0; i < meta.size(); ++i)
    if (!cancelled[i]) reference.emplace(meta[i].first, meta[i].second);

  while (q.run_one() != kTimeInfinity) {
  }
  ASSERT_EQ(fired.size(), reference.size());
  // Same multiset ordered by time; equal-time order is schedule order, which
  // multimap preserves for equal keys (insertion order guaranteed).
  std::size_t i = 0;
  for (const auto& [t, tg] : reference) {
    EXPECT_EQ(fired[i], tg) << "position " << i << " time " << t;
    ++i;
  }
}

}  // namespace
}  // namespace sfq
