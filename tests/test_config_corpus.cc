// Config parser crash-freedom (ISSUE satellite): the checked-in corpus of
// malformed .conf files (tests/corpus/config) must all come back from
// try_parse_file as a clean nullopt plus a diagnostic — never a crash, an
// abort, or an uncaught exception. A fuzz-lite pass additionally pushes
// random token soup and every truncation of a valid config through
// try_parse. New parser failure classes get a corpus file, not just a fix.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <optional>
#include <random>
#include <sstream>
#include <string>

#include "config/experiment.h"

namespace sfq::config {
namespace {

namespace fs = std::filesystem;

// Injected by tests/CMakeLists.txt.
const char* corpus_dir() { return SFQ_TEST_CORPUS_DIR; }

TEST(ConfigCorpus, EveryCorpusFileIsRejectedWithADiagnostic) {
  std::size_t seen = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(corpus_dir())) {
    if (e.path().extension() != ".conf") continue;
    ++seen;
    std::string error;
    const std::optional<ExperimentSpec> spec =
        ExperimentSpec::try_parse_file(e.path().string(), &error);
    EXPECT_FALSE(spec.has_value())
        << e.path().filename() << " unexpectedly parsed";
    EXPECT_FALSE(error.empty()) << e.path().filename() << " gave no diagnostic";
  }
  EXPECT_GE(seen, 10u) << "corpus went missing from " << corpus_dir();
}

TEST(ConfigCorpus, MissingFileIsAnErrorNotACrash) {
  std::string error;
  EXPECT_FALSE(ExperimentSpec::try_parse_file(
                   std::string(corpus_dir()) + "/no_such_file.conf", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ConfigCorpus, RandomTokenSoupNeverCrashesTheParser) {
  // Config-ish tokens glued together with raw bytes: most lines are garbage,
  // a few accidentally parse — both outcomes are fine, crashing is not.
  static const char* kTokens[] = {
      "flow",  "link",  "scheduler", "fault", "class", "duration", "trace",
      "name=", "rate=", "packet=",   "p=",    "=",     "==",       " ",
      "\n",    "\t",    "#",         "1e999", "-1",    "Mbps",     "B",
      "s",     "nan",   "inf",       ".",     "1..2",  "0x10"};
  std::mt19937_64 rng(0xc0ffee);
  for (int iter = 0; iter < 500; ++iter) {
    std::string text;
    const std::size_t parts = rng() % 40;
    for (std::size_t i = 0; i < parts; ++i) {
      if (rng() % 4 == 0)
        text.push_back(static_cast<char>(rng() % 256));
      else
        text += kTokens[rng() % std::size(kTokens)];
    }
    std::istringstream in(text);
    std::string error;
    (void)ExperimentSpec::try_parse(in, &error);  // must not crash
  }
}

TEST(ConfigCorpus, EveryTruncationOfAValidConfigIsHandled) {
  const std::string base =
      "scheduler HSFQ\n"
      "link rate=2Mbps buffer=16 policy=pushout\n"
      "duration 1.5s\n"
      "class name=gold weight=1.2Mbps\n"
      "fault link degrade=0.3 from=0.2s until=0.5s\n"
      "fault loss p=0.05 from=0s until=1s seed=9\n"
      "flow name=a kind=greedy packet=1500B weight=600Kbps class=gold\n"
      "flow name=b kind=onoff rate=500Kbps packet=1000B leave=0.8s join=1s\n";
  {
    std::istringstream in(base);
    ASSERT_TRUE(ExperimentSpec::try_parse(in).has_value());
  }
  for (std::size_t cut = 0; cut < base.size(); ++cut) {
    std::istringstream in(base.substr(0, cut));
    (void)ExperimentSpec::try_parse(in);  // must not crash
  }
}

}  // namespace
}  // namespace sfq::config
