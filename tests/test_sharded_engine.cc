// Sharded multi-core engine (rt/shard/, docs/REALTIME.md "Sharding"):
// stable flow->shard routing, exact global ledger conservation (the sum of
// the per-shard ledgers IS the offer ledger), per-shard + cross-shard
// hierarchical fairness under sustained overload with shedding, routing
// stability across flow leave/rejoin churn, and the chaos differential
// driven through the sharded path. Timing-sensitive assertions use ledger
// identities (exact by construction) or generous Theorem-1 bounds.
#include "rt/shard/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chaos/differential.h"
#include "chaos/scenario_generator.h"
#include "core/scheduler_factory.h"
#include "core/sfq_scheduler.h"
#include "rt/load_gen.h"
#include "rt/shard/shard_router.h"
#include "stats/fairness.h"

namespace sfq::rt {
namespace {

constexpr double kBits = 4000.0;

Packet make_packet(FlowId flow, uint64_t seq, double bits = kBits) {
  Packet p{};
  p.flow = flow;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

uint64_t cause(const EngineStats& s, obs::DropCause c) {
  return s.drops[static_cast<std::size_t>(c)];
}

// The per-engine exact identities (docs/ROBUSTNESS.md), valid after stop().
void expect_ledger(const EngineStats& s, const std::string& where) {
  const uint64_t pre = cause(s, obs::DropCause::kUnknownFlow) +
                       cause(s, obs::DropCause::kBufferLimit) +
                       cause(s, obs::DropCause::kShed);
  const uint64_t post = cause(s, obs::DropCause::kPushout) +
                        cause(s, obs::DropCause::kFlowRemoved);
  EXPECT_EQ(s.ingress_pushed, s.accepted + pre + s.abandoned) << where;
  EXPECT_EQ(s.accepted, s.transmitted + s.backlog + post) << where;
}

ShardedEngine::SchedulerFactory sfq_factory(double link_rate) {
  return [link_rate](std::size_t, double share) {
    SchedulerOptions so;
    so.assumed_capacity = link_rate * share;
    return make_scheduler("SFQ", so);
  };
}

TEST(ShardRouter, StableCoversAndMatchesEngine) {
  // Pure function of (flow, shard count): two routers agree everywhere, every
  // shard receives flows at a plausible rate, and the engine's routing table
  // is exactly the router's answer.
  for (const std::size_t shards : {2u, 4u}) {
    ShardRouter a(shards), b(shards);
    std::vector<std::size_t> hits(shards, 0);
    for (FlowId f = 0; f < 1024; ++f) {
      ASSERT_EQ(a.shard_of(f), b.shard_of(f)) << "flow " << f;
      ASSERT_LT(a.shard_of(f), shards);
      ++hits[a.shard_of(f)];
    }
    for (std::size_t k = 0; k < shards; ++k)
      EXPECT_GT(hits[k], 1024 / shards / 2) << "shard " << k << " starved";
  }

  std::vector<ShardFlow> flows(8, ShardFlow{1e6, kBits, ""});
  ShardedEngineOptions opts;
  opts.shards = 4;
  opts.link_rate = 8e6;
  opts.engine.producers = 1;
  auto engine =
      ShardedEngine::try_create(sfq_factory(opts.link_rate), flows, opts);
  ASSERT_NE(engine, nullptr);
  ShardRouter router(4);
  for (FlowId f = 0; f < 8; ++f) {
    EXPECT_EQ(engine->shard_of(f), router.shard_of(f));
    // Unified registration: every flow is registered on every shard under
    // its global id (non-home copies deactivated), so a failover rehome is
    // a plain rejoin on the destination — local id IS the global id, the
    // contract replay tooling and the supervisor both rely on.
    EXPECT_EQ(engine->local_id(f), f);
  }
}

TEST(ShardedEngine, GlobalLedgerConservationIsExact) {
  // 4 shards behind tiny per-shard buffers, blasted unpaced with a mix of
  // known and unknown flow ids. After stop(kDrain): each shard's ledger
  // satisfies the engine identities, the summed ledger satisfies them too,
  // and offers == ingress_pushed + ingress_drops — every offer is accounted
  // on exactly one shard, none double-counted.
  std::vector<ShardFlow> flows(8, ShardFlow{1e6, kBits, ""});
  ShardedEngineOptions opts;
  opts.shards = 4;
  opts.link_rate = 2e8;  // fast link: the blast drains quickly
  opts.engine.producers = 1;
  opts.engine.buffer_limit = 8;  // small: forces kBufferLimit drops
  auto engine =
      ShardedEngine::try_create(sfq_factory(opts.link_rate), flows, opts);
  ASSERT_NE(engine, nullptr);

  engine->start();
  uint64_t offers = 0;
  for (uint64_t i = 0; i < 20000; ++i) {
    // Every 97th offer targets an unregistered global id: it must route
    // somewhere deterministic and land as a kUnknownFlow drop.
    const FlowId f = i % 97 == 0 ? static_cast<FlowId>(1000 + i % 7)
                                 : static_cast<FlowId>(i % 8);
    engine->offer(0, make_packet(f, i));
    ++offers;  // failed offers count too: they are ingress_drops
  }
  engine->stop(StopMode::kDrain);

  EngineStats sum;
  uint64_t unknown = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const EngineStats es = engine->shard_stats(k);
    expect_ledger(es, "shard " + std::to_string(k));
    EXPECT_EQ(es.backlog, 0u) << "shard " << k << " did not drain";
    sum.ingress_pushed += es.ingress_pushed;
    sum.ingress_drops += es.ingress_drops;
    sum.accepted += es.accepted;
    sum.transmitted += es.transmitted;
    sum.abandoned += es.abandoned;
    sum.backlog += es.backlog;
    for (std::size_t c = 0; c < obs::kDropCauseCount; ++c)
      sum.drops[c] += es.drops[c];
    unknown += cause(es, obs::DropCause::kUnknownFlow);
  }
  const EngineStats st = engine->stats();
  EXPECT_EQ(st.ingress_pushed, sum.ingress_pushed);
  EXPECT_EQ(st.transmitted, sum.transmitted);
  EXPECT_EQ(st.dropped(), sum.dropped());
  expect_ledger(st, "global sum");
  EXPECT_EQ(offers, st.ingress_pushed + st.ingress_drops);
  EXPECT_GT(unknown, 0u) << "unregistered ids must land as kUnknownFlow";
  EXPECT_GT(cause(st, obs::DropCause::kBufferLimit), 0u)
      << "the tiny buffer never filled — the drop path went untested";
}

TEST(ShardedEngine, FairnessBoundHoldsUnderOverloadWithShedding) {
  // 4 equal flows over 2 shards (flow 2 hashes alone to shard 0; flows
  // 0/1/3 share shard 1), paced at 2.5x the 1 Mb/s link with the admission
  // machine armed. Every pair's normalized service gap over steady-state
  // windows must stay within fairness_bound(f, m) — plain Theorem 1 within
  // a shard, + both shards' eq.-65 slack across shards — plus one pacing
  // quantum per flow. Low rates keep the gate robust under sanitizers and
  // on few-core machines: the bound scales as l/w while OS-timeslice pauses
  // of a dispatcher thread (which hit cross-shard pairs only — same-shard
  // flows freeze together) are absolute wall time, so the bound must
  // dominate a scheduling quantum by a wide margin.
  const double w = 2.5e5;
  const double link = 1e6;
  std::vector<ShardFlow> flows(4, ShardFlow{w, kBits, ""});
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.link_rate = link;
  opts.engine.producers = 2;
  opts.engine.buffer_limit = 64;
  opts.engine.admission_control = true;
  auto engine = ShardedEngine::try_create(sfq_factory(link), flows, opts);
  ASSERT_NE(engine, nullptr);
  ASSERT_NE(engine->shard_of(0), engine->shard_of(2))
      << "expected a cross-shard pair; the router changed";

  std::vector<std::vector<FlowLoad>> producers(2);
  for (FlowId f = 0; f < 4; ++f) {
    FlowLoad l;
    l.flow = f;
    l.model = FlowLoad::Model::kCbr;
    l.rate = 2.5 * w;
    l.packet_bits = kBits;
    l.seed = 1 + f;
    producers[f % 2].push_back(l);
  }

  engine->start();
  const Time t0 = engine->now();
  LoadGen gen(*engine, std::move(producers), {});
  gen.start(1.5);
  std::vector<std::vector<double>> snaps;
  Time next = t0 + 0.05;
  while (engine->now() - t0 < 1.5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (engine->now() >= next) {
      snaps.push_back(engine->service_snapshot());
      next += 0.05;
    }
  }
  gen.join();
  engine->stop(StopMode::kDrain);

  const EngineStats st = engine->stats();
  EXPECT_GT(cause(st, obs::DropCause::kShed), 0u)
      << "2.5x load never tripped the shedding gate";
  int worst = 0;
  for (std::size_t k = 0; k < 2; ++k)
    worst = std::max(worst, engine->shard_stats(k).overload_state);
  EXPECT_EQ(st.overload_state, worst)
      << "summed stats must report the worst shard's overload state";

  ASSERT_GE(snaps.size(), 8u);
  // Without a core per dispatcher the root premise — each shard actually
  // receives its R*W_k/W share in wall time — is broken by OS timeslicing:
  // same-shard flows freeze together, but a cross-shard pair drifts by
  // however long one dispatcher sat descheduled. Grant those pairs one
  // scheduling-epoch allowance on starved machines; a genuine fairness bug
  // still fails, because a misrouted or starved flow opens a gap on the
  // order of the full measurement window (~750 ms here).
  const double cpu_slack =
      std::thread::hardware_concurrency() >= 2 * opts.shards ? 0.0 : 0.25;
  const std::size_t lo = snaps.size() / 4;
  const std::size_t hi = snaps.size() - snaps.size() / 4;
  for (FlowId f = 0; f < 4; ++f) {
    for (FlowId m = f + 1; m < 4; ++m) {
      const bool cross = engine->shard_of(f) != engine->shard_of(m);
      const double bound = engine->fairness_bound(f, m) +
                           stats::sfq_fairness_bound(kBits, w, kBits, w) +
                           (cross ? cpu_slack : 0.0);
      double worst_gap = 0.0;
      for (std::size_t i = lo; i < hi; ++i)
        for (std::size_t j = i + 1; j < hi; ++j)
          worst_gap = std::max(
              worst_gap, std::fabs((snaps[j][f] - snaps[i][f]) / w -
                                   (snaps[j][m] - snaps[i][m]) / w));
      EXPECT_LE(worst_gap, bound)
          << "flows " << f << "/" << m << (cross ? " (cross-shard)" : "")
          << ": gap " << 1e3 * worst_gap << " ms > bound " << 1e3 * bound
          << " ms";
      if (cross) {
        // The cross-shard bound must actually include both shards' slack.
        EXPECT_GT(engine->fairness_bound(f, m),
                  stats::sfq_fairness_bound(kBits, w, kBits, w));
      }
    }
  }
}

TEST(ShardedEngine, RoutingStableAcrossFlowChurn) {
  // The flow->shard map is a pure hash and the routing table is immutable:
  // removing and rejoining a flow at the scheduler level must not move any
  // flow, and the rejoined flow's first start tag takes the max against its
  // pre-departure finish tag (no fairness credit for leaving).
  std::vector<ShardFlow> flows(4, ShardFlow{1e6, kBits, ""});
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.link_rate = 2e6;
  opts.engine.producers = 1;
  auto engine =
      ShardedEngine::try_create(sfq_factory(opts.link_rate), flows, opts);
  ASSERT_NE(engine, nullptr);

  std::vector<std::size_t> before(4);
  for (FlowId f = 0; f < 4; ++f) before[f] = engine->shard_of(f);

  // Drive shard 0's scheduler directly (the engine is not running, so the
  // dispatcher contract is not in play). Flow 2 lives alone on shard 0.
  const FlowId victim = 2;
  const std::size_t home = engine->shard_of(victim);
  const FlowId local = engine->local_id(victim);
  Scheduler& sched = engine->scheduler(home);
  ASSERT_TRUE(sched.enqueue(make_packet(local, 0), 0.0));
  const std::optional<Packet> served = sched.dequeue(0.0);
  ASSERT_TRUE(served.has_value());
  const double f_prev = served->finish_tag;
  sched.on_transmit_complete(*served, 0.001);

  sched.remove_flow(local, 0.002);
  sched.rejoin_flow(local, 0.003);
  for (FlowId f = 0; f < 4; ++f)
    EXPECT_EQ(engine->shard_of(f), before[f]) << "churn moved flow " << f;

  ASSERT_TRUE(sched.enqueue(make_packet(local, 1), 0.003));
  const std::optional<Packet> rejoined = sched.dequeue(0.003);
  ASSERT_TRUE(rejoined.has_value());
  EXPECT_GE(rejoined->start_tag, f_prev)
      << "rejoin must not restart the flow's tags below its last finish";

  // End to end: after the churn, the rejoined flow's packets still land on
  // its home shard's ledger.
  engine->start();
  const uint64_t tx_before = engine->shard_stats(home).transmitted;
  for (uint64_t i = 0; i < 50; ++i)
    ASSERT_TRUE(engine->offer_wait(0, make_packet(victim, 100 + i)));
  engine->stop(StopMode::kDrain);
  EXPECT_EQ(engine->shard_stats(home).transmitted, tx_before + 50);
  for (std::size_t k = 0; k < 2; ++k)
    expect_ledger(engine->shard_stats(k), "shard " + std::to_string(k));
}

TEST(ShardedEngine, ChaosDifferentialPassesThroughShardedPath) {
  // Generated rt scenarios through chaos::check_rt with shards=2: the
  // deterministic offer schedule, per-shard capture->replay, conservation
  // and the root-bound sampling must all hold on clean seeds.
  chaos::GeneratorOptions gen_opts;
  gen_opts.rt_compatible = true;
  chaos::ScenarioGenerator gen(gen_opts);
  chaos::RtCheckOptions rc;
  rc.packets = 400;
  rc.shards = 2;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const chaos::CheckResult res = chaos::check_rt(gen.generate(seed), seed, rc);
    EXPECT_TRUE(res.ok) << "seed " << seed << " [" << res.kind << "] "
                        << res.detail;
  }
}

}  // namespace
}  // namespace sfq::rt
