// Tracer / sink plumbing (src/obs/trace.h): fan-out routing, ring-buffer
// wraparound accounting, and JSONL formatting incl. string escaping.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/sfq_scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sfq {
namespace {

using obs::RingBufferSink;
using obs::TraceEvent;
using obs::TraceEventType;
using obs::Tracer;

TraceEvent ev(TraceEventType type, uint64_t seq, FlowId flow = 0) {
  TraceEvent e;
  e.type = type;
  e.flow = flow;
  e.seq = seq;
  return e;
}

// A sink that just counts, to observe routing.
class CountingSink final : public obs::TraceSink {
 public:
  void on_event(const TraceEvent&) override { ++events; }
  void finish() override { ++finishes; }
  int events = 0;
  int finishes = 0;
};

// --- Fan-out routing ------------------------------------------------------

TEST(Tracer, RoutesEveryEventToEverySink) {
  Tracer tracer;
  CountingSink a, b;
  tracer.add_sink(&a);
  tracer.add_sink(&b);
  auto owned = std::make_unique<CountingSink>();
  CountingSink* c = owned.get();
  tracer.own(std::move(owned));

  for (uint64_t i = 0; i < 5; ++i) tracer.emit(ev(TraceEventType::kTag, i));
  tracer.finish();

  EXPECT_EQ(tracer.emitted(), 5u);
  EXPECT_EQ(tracer.sink_count(), 3u);
  for (const CountingSink* s : {&a, &b, c}) {
    EXPECT_EQ(s->events, 5);
    EXPECT_EQ(s->finishes, 1);
  }
}

TEST(Tracer, SchedulerHooksAreNoOpsWithoutTracer) {
  // The default (untraced) path must not crash or allocate a tracer.
  SfqScheduler s;
  EXPECT_EQ(s.tracer(), nullptr);
  FlowId f = s.add_flow(1.0);
  Packet p;
  p.flow = f;
  p.seq = 1;
  p.length_bits = 100.0;
  s.enqueue(std::move(p), 0.0);
  auto out = s.dequeue(0.0);
  ASSERT_TRUE(out);
  EXPECT_EQ(s.tracer(), nullptr);
}

TEST(Tracer, SchedulerEmitsTagAndDequeueEvents) {
  SfqScheduler s;
  Tracer tracer;
  RingBufferSink ring(16);
  tracer.add_sink(&ring);
  s.set_tracer(&tracer);

  FlowId f = s.add_flow(1.0);
  Packet p;
  p.flow = f;
  p.seq = 7;
  p.length_bits = 2.0;
  s.enqueue(std::move(p), 0.0);
  auto out = s.dequeue(0.0);
  ASSERT_TRUE(out);

  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kTag);
  EXPECT_EQ(events[0].seq, 7u);
  EXPECT_DOUBLE_EQ(events[0].start_tag, 0.0);
  EXPECT_DOUBLE_EQ(events[0].finish_tag, 2.0);
  EXPECT_EQ(events[0].backlog, 1u);
  EXPECT_EQ(events[1].type, TraceEventType::kDequeue);
  EXPECT_EQ(events[1].backlog, 0u);
}

// --- Ring buffer ----------------------------------------------------------

TEST(RingBufferSink, KeepsEverythingBelowCapacity) {
  RingBufferSink ring(8);
  for (uint64_t i = 0; i < 5; ++i)
    ring.on_event(ev(TraceEventType::kEnqueue, i));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.seen(), 5u);
  EXPECT_EQ(ring.overwritten(), 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].seq, i);
}

TEST(RingBufferSink, WrapsAroundKeepingNewestInOrder) {
  RingBufferSink ring(4);
  for (uint64_t i = 0; i < 11; ++i)
    ring.on_event(ev(TraceEventType::kEnqueue, i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.seen(), 11u);
  EXPECT_EQ(ring.overwritten(), 7u);
  const auto events = ring.events();  // oldest -> newest
  ASSERT_EQ(events.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].seq, 7 + i);
}

// --- JSONL ----------------------------------------------------------------

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonlSink, WritesOneObjectPerLineWithEscapedMeta) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  sink.meta("scheduler", "SFQ \"quoted\"\nname");

  TraceEvent e = ev(TraceEventType::kDrop, 3, /*flow=*/2);
  e.drop_cause = obs::DropCause::kBufferLimit;
  e.t = 1.5;
  e.length_bits = 800.0;
  sink.on_event(e);
  sink.finish();
  EXPECT_EQ(sink.lines(), 2u);

  std::istringstream lines(out.str());
  std::string meta_line, drop_line, extra;
  ASSERT_TRUE(std::getline(lines, meta_line));
  ASSERT_TRUE(std::getline(lines, drop_line));
  EXPECT_FALSE(std::getline(lines, extra));

  EXPECT_EQ(meta_line,
            "{\"type\":\"meta\",\"key\":\"scheduler\","
            "\"value\":\"SFQ \\\"quoted\\\"\\nname\"}");
  EXPECT_NE(drop_line.find("\"type\":\"drop\""), std::string::npos);
  EXPECT_NE(drop_line.find("\"cause\":\"buffer_limit\""), std::string::npos);
  EXPECT_NE(drop_line.find("\"flow\":2"), std::string::npos);
  EXPECT_NE(drop_line.find("\"seq\":3"), std::string::npos);
  EXPECT_EQ(drop_line.front(), '{');
  EXPECT_EQ(drop_line.back(), '}');
}

TEST(JsonlSink, RoundTripsTimestampsAtFullPrecision) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  TraceEvent e = ev(TraceEventType::kDequeue, 1);
  e.t = 0.1 + 0.2;  // 0.30000000000000004
  sink.on_event(e);
  EXPECT_NE(out.str().find("0.30000000000000004"), std::string::npos);
}

// --- Registry histogram quantiles -----------------------------------------

TEST(RegistryHistogram, OverflowBucketQuantileClampsToObservedMax) {
  // Samples beyond the last bound land in the overflow bucket, which has no
  // finite upper edge: the quantile must clamp to max(), not interpolate an
  // invented spread between the last bound and max().
  obs::Histogram h({1.0, 2.0});
  h.observe(150.0);
  h.observe(151.0);
  h.observe(152.0);
  EXPECT_EQ(h.quantile(0.5), 152.0);
  EXPECT_EQ(h.quantile(0.99), 152.0);
  EXPECT_EQ(h.quantile(1.0), 152.0);
  // Finite buckets still interpolate: median of uniform 0..1 samples sits
  // inside the first bucket, not at its edge.
  obs::Histogram g({1.0, 2.0});
  g.observe(0.2);
  g.observe(0.4);
  g.observe(0.8);
  EXPECT_GT(g.quantile(0.5), 0.2);
  EXPECT_LT(g.quantile(0.5), 0.8);
}

// --- MetricsSink drop taxonomy ---------------------------------------------

TEST(MetricsSink, EmitsAllDropCauses) {
  obs::MetricsRegistry reg;
  obs::MetricsSink sink(reg);
  // Every cause counter is materialized as a zero up front — including
  // shed, the overload-admission cause.
  for (const char* name :
       {"sched.drops.buffer_limit", "sched.drops.unknown_flow",
        "sched.drops.fault_loss", "sched.drops.corrupt",
        "sched.drops.pushout", "sched.drops.flow_removed",
        "sched.drops.shed"}) {
    EXPECT_EQ(reg.counter(name).value(), 0u) << name;
  }
  const obs::DropCause causes[] = {
      obs::DropCause::kBufferLimit, obs::DropCause::kUnknownFlow,
      obs::DropCause::kFaultLoss,   obs::DropCause::kCorrupt,
      obs::DropCause::kPushout,     obs::DropCause::kFlowRemoved,
      obs::DropCause::kShed,
  };
  for (obs::DropCause c : causes) {
    TraceEvent e = ev(TraceEventType::kDrop, 1, /*flow=*/0);
    e.drop_cause = c;
    sink.on_event(e);
    sink.on_event(e);
  }
  for (obs::DropCause c : causes) {
    const std::string name = std::string("sched.drops.") + obs::to_string(c);
    EXPECT_EQ(reg.counter(name).value(), 2u) << name;
  }
}

}  // namespace
}  // namespace sfq
