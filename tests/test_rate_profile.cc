#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "net/rate_profile.h"

namespace sfq::net {
namespace {

TEST(ConstantRate, FinishAndWork) {
  ConstantRate r(100.0);
  EXPECT_DOUBLE_EQ(r.finish_time(2.0, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(r.work(1.0, 3.0), 200.0);
  EXPECT_DOUBLE_EQ(r.work(3.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(r.average_rate(), 100.0);
}

TEST(ConstantRate, RejectsNonPositive) {
  EXPECT_THROW(ConstantRate(0.0), std::invalid_argument);
  EXPECT_THROW(ConstantRate(-1.0), std::invalid_argument);
}

TEST(PiecewiseConstantRate, WalksSegments) {
  PiecewiseConstantRate r({{0.0, 10.0}, {1.0, 0.0}, {2.0, 20.0}});
  // 15 bits from t=0: 10 bits by t=1, stall to t=2, 5 more by t=2.25.
  EXPECT_DOUBLE_EQ(r.finish_time(0.0, 15.0), 2.25);
  EXPECT_DOUBLE_EQ(r.work(0.0, 3.0), 10.0 + 0.0 + 20.0);
  EXPECT_DOUBLE_EQ(r.work(0.5, 2.5), 5.0 + 10.0);
}

TEST(PiecewiseConstantRate, FinishWithinOneSegment) {
  PiecewiseConstantRate r({{0.0, 10.0}, {100.0, 1.0}});
  EXPECT_DOUBLE_EQ(r.finish_time(5.0, 20.0), 7.0);
}

TEST(PiecewiseConstantRate, LastSegmentExtendsForever) {
  PiecewiseConstantRate r({{0.0, 1.0}, {1.0, 5.0}});
  EXPECT_DOUBLE_EQ(r.finish_time(1.0, 500.0), 101.0);
}

TEST(PiecewiseConstantRate, StalledForeverThrows) {
  PiecewiseConstantRate r({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_THROW(r.finish_time(2.0, 1.0), std::runtime_error);
}

TEST(PiecewiseConstantRate, ValidatesSegments) {
  EXPECT_THROW(PiecewiseConstantRate(std::vector<PiecewiseConstantRate::Segment>{}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseConstantRate({{1.0, 5.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseConstantRate({{0.0, 1.0}, {0.0, 2.0}}),
               std::invalid_argument);
}

// --- Definition 1: the FC inequality -----------------------------------

TEST(FcOnOffRate, SatisfiesFluctuationConstraint) {
  const double C = 1000.0, delta = 250.0;
  FcOnOffRate r(C, delta, 0.5);
  // W(t1,t2) >= C (t2-t1) - delta for a dense grid of intervals.
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> t(0.0, 20.0);
  for (int i = 0; i < 4000; ++i) {
    double a = t(rng), b = t(rng);
    if (a > b) std::swap(a, b);
    const double w = r.work(a, b);
    EXPECT_GE(w, C * (b - a) - delta - 1e-6) << "[" << a << "," << b << "]";
  }
}

TEST(FcOnOffRate, FluctuationBoundIsTight) {
  // Some interval should get close to the bound, otherwise the profile is a
  // weaker server than advertised and variable-rate tests prove nothing.
  const double C = 1000.0, delta = 250.0;
  FcOnOffRate r(C, delta, 0.5);
  double worst = 0.0;
  for (double a = 0.0; a < 5.0; a += 0.01) {
    for (double len = 0.05; len < 1.0; len += 0.05) {
      worst = std::max(worst, C * len - r.work(a, a + len));
    }
  }
  EXPECT_GT(worst, 0.9 * delta);
  EXPECT_LE(worst, delta + 1e-6);
}

TEST(FcOnOffRate, LongRunAverageMatches) {
  const double C = 800.0;
  FcOnOffRate r(C, 400.0, 0.4);
  EXPECT_NEAR(r.work(0.0, 50.0) / 50.0, C, C * 0.02);
}

TEST(FcOnOffRate, ZeroDeltaIsConstantRate) {
  FcOnOffRate r(100.0, 0.0);
  EXPECT_DOUBLE_EQ(r.finish_time(0.0, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(r.work(3.0, 7.0), 400.0);
}

TEST(FcOnOffRate, PhaseShiftsPattern) {
  FcOnOffRate a(1000.0, 200.0, 0.5, 0.0);
  FcOnOffRate b(1000.0, 200.0, 0.5, 0.1);
  // Different phases give different instantaneous work but same average.
  EXPECT_NEAR(a.work(0.0, 40.0), b.work(0.0, 40.0), 1000.0 * 0.4 + 1.0);
}

TEST(FcOnOffRate, RejectsBadParameters) {
  EXPECT_THROW(FcOnOffRate(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(FcOnOffRate(10.0, -1.0), std::invalid_argument);
  EXPECT_THROW(FcOnOffRate(10.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(FcOnOffRate(10.0, 1.0, 1.0), std::invalid_argument);
}

// --- EBF profile ------------------------------------------------------------

TEST(EbfRandomRate, LongRunAverageAtLeastClaimed) {
  EbfRandomRate::Params p;
  p.average = 500.0;
  p.on_rate = 1000.0;
  p.mean_pause = 0.01;
  p.mean_run = 0.02;
  p.seed = 5;
  EbfRandomRate r(p);
  // Effective average = 1000 * 2/3 ~ 667 >= 500.
  EXPECT_GE(r.work(0.0, 100.0) / 100.0, p.average);
}

TEST(EbfRandomRate, DeficitTailDecays) {
  // The accumulated deficit against the claimed average should exceed small
  // thresholds often and large thresholds rarely (exponential-ish tail).
  EbfRandomRate::Params p;
  p.average = 500.0;
  p.on_rate = 900.0;
  p.mean_pause = 0.02;
  p.mean_run = 0.04;
  p.seed = 11;
  EbfRandomRate r(p);

  int small_exceed = 0, large_exceed = 0;
  const int n = 2000;
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> start(0.0, 50.0);
  for (int i = 0; i < n; ++i) {
    const double a = start(rng);
    const double deficit = p.average * 0.5 - r.work(a, a + 0.5);
    if (deficit > 5.0) ++small_exceed;
    if (deficit > 25.0) ++large_exceed;
  }
  EXPECT_GT(small_exceed, large_exceed);
}

TEST(EbfRandomRate, RejectsInsufficientOnRate) {
  EbfRandomRate::Params p;
  p.average = 500.0;
  p.on_rate = 600.0;
  p.mean_pause = 0.05;
  p.mean_run = 0.05;  // effective = 300 < 500
  EXPECT_THROW(EbfRandomRate{p}, std::invalid_argument);
}

TEST(EbfRandomRate, DeterministicForFixedSeed) {
  EbfRandomRate::Params p;
  p.average = 500.0;
  p.on_rate = 1500.0;
  p.seed = 9;
  EbfRandomRate a(p), b(p);
  EXPECT_DOUBLE_EQ(a.finish_time(0.0, 10000.0), b.finish_time(0.0, 10000.0));
  EXPECT_DOUBLE_EQ(a.work(1.0, 7.0), b.work(1.0, 7.0));
}

}  // namespace
}  // namespace sfq::net
