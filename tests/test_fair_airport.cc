#include <gtest/gtest.h>

#include <memory>

#include "harness.h"
#include "net/rate_profile.h"
#include "qos/bounds.h"
#include "sched/fair_airport.h"
#include "stats/fairness.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits, Time arrival = 0.0) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  p.arrival = arrival;
  return p;
}

TEST(FairAirport, FirstPacketIsImmediatelyEligible) {
  // EAT(p^1) = A(p^1), so a flow's first packet passes the regulator at once
  // and is served through the GSQ.
  FairAirportScheduler s;
  FlowId f = s.add_flow(1.0);
  s.enqueue(mk(f, 1, 10.0, 0.0), 0.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(s.served_via_gsq(), 1u);
  EXPECT_EQ(s.served_via_asq(), 0u);
}

TEST(FairAirport, EligiblePacketPreferredThroughGsq) {
  FairAirportScheduler s;
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(1.0);
  // Both enqueue at t=0 (EAT=0, eligible immediately). GSQ stamps:
  // a: 0 + 10/1 = 10, b: 0 + 2/1 = 2 -> b first via GSQ.
  s.enqueue(mk(a, 1, 10.0, 0.0), 0.0);
  s.enqueue(mk(b, 1, 2.0, 0.0), 0.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, b);
  EXPECT_EQ(s.served_via_gsq(), 1u);
}

TEST(FairAirport, RegulatorHoldsSecondPacketBackFromGsq) {
  // Two back-to-back packets of one flow: p1 eligible at 0; p2's release is
  // EAT = l/r = 10 s away, so at t=0 only p1 sits in the GSQ.
  FairAirportScheduler s;
  FlowId f = s.add_flow(1.0);
  s.enqueue(mk(f, 1, 10.0, 0.0), 0.0);
  s.enqueue(mk(f, 2, 10.0, 0.0), 0.0);
  auto p1 = s.dequeue(0.0);
  ASSERT_TRUE(p1);
  EXPECT_EQ(s.served_via_gsq(), 1u);
  // p2 is not yet eligible -> ASQ path if asked before t=10.
  auto p2 = s.dequeue(1.0);
  ASSERT_TRUE(p2);
  EXPECT_EQ(s.served_via_asq(), 1u);
}

TEST(FairAirport, LateDequeuePromotesThroughRegulator) {
  FairAirportScheduler s;
  FlowId f = s.add_flow(1.0);
  s.enqueue(mk(f, 1, 10.0, 0.0), 0.0);
  s.enqueue(mk(f, 2, 10.0, 0.0), 0.0);
  auto p1 = s.dequeue(0.0);
  ASSERT_TRUE(p1);
  // Ask again at t=10: p2's release (EAT=10) has passed -> GSQ.
  auto p2 = s.dequeue(10.0);
  ASSERT_TRUE(p2);
  EXPECT_EQ(s.served_via_gsq(), 2u);
}

// --- Theorem 9: Fair Airport delivers WFQ's delay bound --------------------

TEST(FairAirport, TheoremNineDelayBound) {
  const double C = 1000.0, len = 50.0;
  FairAirportScheduler s;
  std::vector<test::FlowCfg> cfgs = {
      {400.0, len, test::Kind::kPoisson, 360.0},
      {300.0, len, test::Kind::kPoisson, 270.0},
      {300.0, len, test::Kind::kGreedy},
  };
  auto r = test::run_workload(s, std::make_unique<net::ConstantRate>(C), cfgs,
                              10.0, 23);
  // L_FA <= EAT + l/r + l_max/C (eq. 137; beta = l_max/C).
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const Time bound = len / cfgs[i].weight + len / C;
    EXPECT_LE(r->max_eat_lateness[i], bound + 1e-9) << "flow " << i;
  }
}

// --- Theorem 8: fairness, even on a variable-rate server -------------------

TEST(FairAirport, TheoremEightFairnessOnVariableRateServer) {
  // FC server with minimum instantaneous... the theorem needs minimum
  // capacity C; use an on/off profile and evaluate against its *on* pattern
  // average as the working capacity with the Theorem-8 slack terms.
  const double Cavg = 1000.0;
  FairAirportScheduler s;
  const double w0 = 300.0, w1 = 700.0, l0 = 40.0, l1 = 80.0;
  auto r = test::run_workload(
      s, std::make_unique<net::FcOnOffRate>(Cavg, 200.0, 0.5),
      {{w0, l0, test::Kind::kGreedy}, {w1, l1, test::Kind::kGreedy}}, 8.0);

  const double h =
      stats::empirical_fairness(r->recorder, r->ids[0], w0, r->ids[1], w1);
  // Theorem 8: |W_f/r_f - W_m/r_m| <= 3(l_f/r_f + l_m/r_m) + 2 l_max/C.
  const double beta = std::max(l0, l1) / Cavg;
  const double bound = 3.0 * (l0 / w0 + l1 / w1) + 2.0 * beta;
  EXPECT_LE(h, bound + 1e-9);
  // Shares track the weights over the overloaded window (the harness drains
  // queues afterwards, so totals would just reflect the offered load).
  const double b0 = r->recorder.served_bits(r->ids[0], 0.0, 8.0);
  const double b1 = r->recorder.served_bits(r->ids[1], 0.0, 8.0);
  EXPECT_NEAR(b1 / b0, w1 / w0, 0.35);
}

TEST(FairAirport, AsqStartTagInheritance) {
  // Rule 5: when GSQ serves a packet, the next ASQ packet of that flow
  // inherits its start tag. Observable effect: the flow is not double-charged
  // in the ASQ virtual-time domain, so long-run fairness holds even when all
  // service flows through the GSQ. Covered behaviourally: ASQ vtime never
  // exceeds the inherited tags.
  FairAirportScheduler s;
  FlowId f = s.add_flow(1.0);
  s.enqueue(mk(f, 1, 1.0, 0.0), 0.0);
  s.enqueue(mk(f, 2, 1.0, 0.0), 0.0);
  auto p1 = s.dequeue(0.0);  // GSQ (eligible at 0)
  ASSERT_TRUE(p1);
  EXPECT_EQ(s.served_via_gsq(), 1u);
  // ASQ vtime untouched by GSQ service.
  EXPECT_DOUBLE_EQ(s.asq_vtime(), 0.0);
  auto p2 = s.dequeue(0.5);  // not yet eligible -> ASQ, inherited start = 0
  ASSERT_TRUE(p2);
  EXPECT_DOUBLE_EQ(p2->start_tag, 0.0);
}

TEST(FairAirport, CountsBacklogPerFlow) {
  FairAirportScheduler s;
  FlowId f = s.add_flow(1.0);
  FlowId g = s.add_flow(1.0);
  s.enqueue(mk(f, 1, 7.0, 0.0), 0.0);
  s.enqueue(mk(g, 1, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.backlog_bits(f), 7.0);
  EXPECT_DOUBLE_EQ(s.backlog_bits(g), 3.0);
  EXPECT_EQ(s.backlog_packets(), 2u);
}

}  // namespace
}  // namespace sfq
