// InvariantChecker (src/obs/invariant_checker.h): live SFQ/SCFQ/WFQ runs
// must come out clean, and corrupted tag streams must be flagged.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/scheduler_factory.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "obs/invariant_checker.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

namespace sfq {
namespace {

using obs::InvariantChecker;
using obs::TraceEvent;
using obs::TraceEventType;

// Two CBR flows (one oversubscribed) through a 1 Mb/s server for a second,
// with the checker attached using the discipline's own defaults.
InvariantChecker run_checked(const std::string& sched_name,
                             std::size_t buffer_limit = 0) {
  sim::Simulator sim;
  SchedulerOptions opts;
  opts.assumed_capacity = 1e6;
  auto sched = make_scheduler(sched_name, opts);
  FlowId a = sched->add_flow(6e5, 8000.0, "a");
  FlowId b = sched->add_flow(4e5, 8000.0, "b");
  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(1e6));
  if (buffer_limit) server.set_buffer_limit(buffer_limit);

  InvariantChecker checker(InvariantChecker::for_scheduler(sched_name));
  obs::Tracer tracer;
  tracer.add_sink(&checker);
  server.set_tracer(&tracer);

  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource sa(sim, a, emit, 9e5, 8000.0);  // oversubscribed
  traffic::CbrSource sb(sim, b, emit, 3e5, 8000.0);
  sa.run(0.0, 1.0);
  sb.run(0.0, 1.0);
  sim.run_until(1.0);
  sim.run();
  tracer.finish();
  EXPECT_GT(checker.events_seen(), 0u);
  return checker;
}

TEST(InvariantChecker, CleanSfqRunPasses) {
  const auto c = run_checked("SFQ");
  EXPECT_TRUE(c.ok()) << c.report();
  EXPECT_NE(c.report().find("invariants OK"), std::string::npos);
}

TEST(InvariantChecker, CleanScfqRunPasses) {
  const auto c = run_checked("SCFQ");
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(InvariantChecker, CleanWfqRunPasses) {
  const auto c = run_checked("WFQ");
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(InvariantChecker, FifoUsesServerLevelConservation) {
  // FIFO emits no kTag/kDequeue events; the checker must fall back to the
  // enqueue / tx-start ledger instead of reporting a bogus mismatch.
  const auto c = run_checked("FIFO");
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(InvariantChecker, DropsDoNotBreakConservation) {
  const auto c = run_checked("SFQ", /*buffer_limit=*/4);
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(InvariantChecker, ForSchedulerPicksDisciplineSemantics) {
  auto sfq = InvariantChecker::for_scheduler("SFQ");
  EXPECT_EQ(sfq.order, InvariantChecker::OrderTag::kStartTag);
  EXPECT_TRUE(sfq.check_tags);

  auto scfq = InvariantChecker::for_scheduler("SCFQ");
  EXPECT_EQ(scfq.order, InvariantChecker::OrderTag::kFinishTag);

  // WFQ serves min-finish among queued packets only; no global order.
  auto wfq = InvariantChecker::for_scheduler("WFQ");
  EXPECT_EQ(wfq.order, InvariantChecker::OrderTag::kNone);

  auto fifo = InvariantChecker::for_scheduler("FIFO");
  EXPECT_EQ(fifo.order, InvariantChecker::OrderTag::kNone);
  EXPECT_FALSE(fifo.check_tags);
  EXPECT_TRUE(fifo.check_conservation);
}

// --- Corrupted streams ----------------------------------------------------

TraceEvent tagged(TraceEventType type, double start, double finish,
                  FlowId flow = 0, uint64_t seq = 1) {
  TraceEvent e;
  e.type = type;
  e.flow = flow;
  e.seq = seq;
  e.start_tag = start;
  e.finish_tag = finish;
  e.vtime = start;
  e.backlog = 0;
  return e;
}

TEST(InvariantChecker, FlagsFinishTagBelowStartTag) {
  InvariantChecker c;
  c.on_event(tagged(TraceEventType::kTag, /*start=*/5.0, /*finish=*/4.0));
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("finish tag < start tag"), std::string::npos);
}

TEST(InvariantChecker, FlagsStartTagRegressionWithinFlow) {
  InvariantChecker c;
  c.on_event(tagged(TraceEventType::kTag, 0.0, 2.0, /*flow=*/3, /*seq=*/1));
  // S = max(v, F_prev) can never sit below the flow's previous finish tag.
  c.on_event(tagged(TraceEventType::kTag, 1.0, 3.0, /*flow=*/3, /*seq=*/2));
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("start tag regressed"), std::string::npos);
}

TEST(InvariantChecker, FlagsOutOfOrderDequeues) {
  InvariantChecker c;  // default: start-tag order (SFQ)
  TraceEvent first = tagged(TraceEventType::kDequeue, 2.0, 3.0);
  first.backlog = 1;
  c.on_event(first);
  TraceEvent second = tagged(TraceEventType::kDequeue, 1.0, 2.0);
  second.vtime = first.vtime;  // keep v(t) monotone; isolate the order check
  c.on_event(second);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.violation_count(), 1u);
  EXPECT_NE(c.report().find("out of order"), std::string::npos);
  EXPECT_EQ(c.violations()[0].event_index, 1u);
}

TEST(InvariantChecker, FlagsVirtualTimeRegression) {
  InvariantChecker c;
  TraceEvent e;
  e.type = TraceEventType::kVtime;
  e.vtime = 10.0;
  c.on_event(e);
  e.vtime = 9.0;
  c.on_event(e);
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("v(t) regressed"), std::string::npos);
}

TEST(InvariantChecker, FlagsConservationMismatch) {
  InvariantChecker c;
  // Two packets tagged, none dequeued, but backlog claims empty.
  c.on_event(tagged(TraceEventType::kTag, 0.0, 1.0, 0, 1));
  c.on_event(tagged(TraceEventType::kTag, 1.0, 2.0, 0, 2));
  c.finish();
  EXPECT_FALSE(c.ok());
  EXPECT_NE(c.report().find("conservation violated"), std::string::npos);
}

TEST(InvariantChecker, TieBreaksAndEqualTagsAreNotViolations) {
  InvariantChecker c;
  c.on_event(tagged(TraceEventType::kDequeue, 1.0, 2.0, 0));
  c.on_event(tagged(TraceEventType::kDequeue, 1.0, 1.5, 1));  // tie on S
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(InvariantChecker, SuppressesViolationsPastTheCap) {
  InvariantChecker::Options o;
  o.max_violations = 2;
  InvariantChecker c(o);
  for (int i = 0; i < 5; ++i)
    c.on_event(tagged(TraceEventType::kTag, 5.0, 4.0, 0, i + 1));
  EXPECT_EQ(c.violation_count(), 5u);
  EXPECT_EQ(c.violations().size(), 2u);
  EXPECT_NE(c.report().find("3 more suppressed"), std::string::npos);
}

}  // namespace
}  // namespace sfq
