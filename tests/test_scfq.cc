#include <gtest/gtest.h>

#include <memory>

#include "core/sfq_scheduler.h"
#include "harness.h"
#include "net/rate_profile.h"
#include "qos/bounds.h"
#include "sched/scfq_scheduler.h"
#include "stats/fairness.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

TEST(Scfq, TagsSelfClockOnFinishTagInService) {
  ScfqScheduler s;
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(1.0);

  s.enqueue(mk(a, 1, 4.0), 0.0);  // S=0 F=4
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(s.vtime(), 4.0);  // v = finish tag in service

  // Arrival while a's packet is in service: S = max(v, F_prev) = 4.
  s.enqueue(mk(b, 1, 2.0), 0.5);
  auto q = s.dequeue(0.5);
  ASSERT_TRUE(q);
  EXPECT_EQ(q->flow, b);
  EXPECT_DOUBLE_EQ(q->start_tag, 4.0);
  EXPECT_DOUBLE_EQ(q->finish_tag, 6.0);
}

TEST(Scfq, ServesInFinishTagOrder) {
  ScfqScheduler s;
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(4.0);
  s.enqueue(mk(a, 1, 4.0), 0.0);  // F=4
  s.enqueue(mk(b, 1, 4.0), 0.0);  // F=1
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, b);
}

TEST(Scfq, FairnessBoundHoldsOnVariableRateServer) {
  ScfqScheduler s;
  const double w0 = 150.0, w1 = 450.0, l0 = 48.0, l1 = 80.0;
  auto r = test::run_workload(
      s, std::make_unique<net::FcOnOffRate>(900.0, 300.0, 0.4),
      {{w0, l0, test::Kind::kGreedy}, {w1, l1, test::Kind::kGreedy}}, 8.0);
  const double h =
      stats::empirical_fairness(r->recorder, r->ids[0], w0, r->ids[1], w1);
  EXPECT_LE(h, qos::sfq_fairness_bound(l0, w0, l1, w1) + 1e-9);
}

// The paper's complaint about SCFQ (§2.3, eqs. 56-57): a low-rate flow's
// packet can be delayed ~l/r past its EAT, whereas SFQ caps the overhang at
// ~l/C. Construct the adversarial pattern: all flows start a busy period
// together; the low-rate flow's packet draws finish tag l/r and must wait for
// every competitor packet with a smaller finish tag.
TEST(Scfq, LowRateFlowDelayApproachesScfqBound) {
  const double C = 1000.0;
  const double r_low = 10.0;
  const double len = 100.0;
  const int kOthers = 8;
  const double r_other = (C - r_low) / kOthers;

  ScfqScheduler scfq_sched;
  SfqScheduler sfq_sched;
  for (Scheduler* s : {static_cast<Scheduler*>(&scfq_sched),
                       static_cast<Scheduler*>(&sfq_sched)}) {
    s->add_flow(r_low, len);
    for (int i = 0; i < kOthers; ++i) s->add_flow(r_other, len);
  }

  auto run = [&](Scheduler& s) {
    sim::Simulator local;
    net::ScheduledServer server(local, s,
                                std::make_unique<net::ConstantRate>(C));
    Time low_depart = 0.0;
    server.set_departure([&](const Packet& p, Time t) {
      if (p.flow == 0) low_depart = t;
    });
    local.at(0.0, [&] {
      // Competitors first (one of them grabs the link), then the low-rate
      // flow's single packet (EAT = 0).
      for (int i = 1; i <= kOthers; ++i)
        for (int j = 1; j <= 12; ++j) server.inject(mk(i, j, len));
      server.inject(mk(0, 1, len));
    });
    local.run();
    return low_depart;
  };

  const Time d_scfq = run(scfq_sched);
  const Time d_sfq = run(sfq_sched);

  // SCFQ bound (eq. 56): sum_{n != f} l/C + l/r = 8*0.1 + 10 = 10.8 s.
  // SFQ bound (Thm 4):   sum_{n != f} l/C + l/C = 0.8 + 0.1 = 0.9 s.
  const Time scfq_bound =
      qos::scfq_delay_term(C, kOthers * len, len, r_low);
  const Time sfq_bound =
      qos::sfq_fc_delay_term({C, 0.0}, kOthers * len, len);
  EXPECT_LE(d_scfq, scfq_bound + 1e-9);
  EXPECT_LE(d_sfq, sfq_bound + 1e-9);
  // The separation is real: SCFQ's packet left much later than SFQ's.
  EXPECT_GT(d_scfq, d_sfq + 5.0);
}

TEST(Scfq, EmptyDequeueReturnsNothing) {
  ScfqScheduler s;
  s.add_flow(1.0);
  EXPECT_FALSE(s.dequeue(0.0));
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace sfq
