#include <gtest/gtest.h>

#include <memory>

#include "core/sfq_scheduler.h"
#include "net/network.h"
#include "net/rate_profile.h"
#include "sim/simulator.h"
#include "traffic/sink.h"
#include "traffic/sources.h"

namespace sfq::net {
namespace {

TandemNetwork::Hop make_hop(double capacity, Time prop) {
  TandemNetwork::Hop h;
  h.scheduler = std::make_unique<SfqScheduler>();
  h.profile = std::make_unique<ConstantRate>(capacity);
  h.propagation_to_next = prop;
  return h;
}

TEST(TandemNetwork, SingleHopDelivers) {
  sim::Simulator sim;
  std::vector<TandemNetwork::Hop> hops;
  hops.push_back(make_hop(10.0, 0.0));
  TandemNetwork net(sim, std::move(hops));
  FlowId f = net.add_flow(1.0, 10.0);

  Time delivered = -1.0;
  uint32_t hops_seen = 0;
  net.set_delivery([&](const Packet& p, Time t) {
    delivered = t;
    hops_seen = p.hops;
  });
  sim.at(0.0, [&] {
    Packet p;
    p.flow = f;
    p.seq = 1;
    p.length_bits = 10.0;
    net.inject(std::move(p));
  });
  sim.run();
  EXPECT_DOUBLE_EQ(delivered, 1.0);
  EXPECT_EQ(hops_seen, 1u);
}

TEST(TandemNetwork, PropagationDelayAdds) {
  sim::Simulator sim;
  std::vector<TandemNetwork::Hop> hops;
  hops.push_back(make_hop(10.0, 0.25));
  hops.push_back(make_hop(10.0, 0.0));
  TandemNetwork net(sim, std::move(hops));
  FlowId f = net.add_flow(1.0, 10.0);
  Time delivered = -1.0;
  net.set_delivery([&](const Packet&, Time t) { delivered = t; });
  sim.at(0.0, [&] {
    Packet p;
    p.flow = f;
    p.seq = 1;
    p.length_bits = 10.0;
    net.inject(std::move(p));
  });
  sim.run();
  // 1 s at hop 1 + 0.25 s propagation + 1 s at hop 2.
  EXPECT_DOUBLE_EQ(delivered, 2.25);
}

TEST(TandemNetwork, PerHopRecordersTrackService) {
  sim::Simulator sim;
  std::vector<TandemNetwork::Hop> hops;
  hops.push_back(make_hop(100.0, 0.0));
  hops.push_back(make_hop(100.0, 0.0));
  hops.push_back(make_hop(100.0, 0.0));
  TandemNetwork net(sim, std::move(hops));
  FlowId f = net.add_flow(50.0, 10.0);

  traffic::CbrSource src(
      sim, f,
      [&](Packet p) {
        p.source_departure = sim.now();
        net.inject(std::move(p));
      },
      50.0, 10.0);
  // Emissions at 0.0, 0.2, ..., 1.8; stop strictly between the 10th and 11th
  // (0.2 accumulates FP error, so 2.0 is not a safe boundary).
  src.run(0.0, 1.9);
  sim.run();
  net.finish_recording();

  for (std::size_t i = 0; i < net.hop_count(); ++i)
    EXPECT_EQ(net.recorder(i).served_packets(f), 10u) << "hop " << i;
}

TEST(TandemNetwork, FlowOrderPreservedEndToEnd) {
  sim::Simulator sim;
  std::vector<TandemNetwork::Hop> hops;
  hops.push_back(make_hop(1000.0, 0.1));
  hops.push_back(make_hop(500.0, 0.1));
  hops.push_back(make_hop(2000.0, 0.0));
  TandemNetwork net(sim, std::move(hops));
  FlowId a = net.add_flow(100.0, 40.0);
  FlowId b = net.add_flow(300.0, 40.0);

  std::vector<uint64_t> seq_a, seq_b;
  net.set_delivery([&](const Packet& p, Time) {
    (p.flow == a ? seq_a : seq_b).push_back(p.seq);
  });
  auto emit = [&](Packet p) { net.inject(std::move(p)); };
  traffic::PoissonSource sa(sim, a, emit, 300.0, 40.0, 5);
  traffic::PoissonSource sb(sim, b, emit, 600.0, 40.0, 6);
  sa.run(0.0, 5.0);
  sb.run(0.0, 5.0);
  sim.run();

  for (std::size_t i = 1; i < seq_a.size(); ++i)
    EXPECT_EQ(seq_a[i], seq_a[i - 1] + 1);
  for (std::size_t i = 1; i < seq_b.size(); ++i)
    EXPECT_EQ(seq_b[i], seq_b[i - 1] + 1);
  // ~7.5 pkt/s for 5 s on flow a.
  EXPECT_GT(seq_a.size(), 25u);
  EXPECT_GT(seq_b.size(), 50u);
}

TEST(TandemNetwork, RejectsEmptyHopList) {
  sim::Simulator sim;
  EXPECT_THROW(TandemNetwork(sim, {}), std::invalid_argument);
}

}  // namespace
}  // namespace sfq::net
