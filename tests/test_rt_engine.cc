// Wall-clock engine (rt/engine.h): drop-taxonomy ledger across the ingress /
// pre-enqueue / post-enqueue stages, packet conservation under multi-producer
// load, lifecycle edges, and Theorem-1 fairness measured on the real clock at
// coarse granularity. Durations are kept small; anything timing-sensitive
// asserts ledger identities (exact by construction) rather than exact counts.
#include "rt/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/sfq_scheduler.h"
#include "net/rate_profile.h"
#include "obs/invariant_checker.h"
#include "obs/telemetry/telemetry.h"
#include "rt/load_gen.h"
#include "rt/sync_sink.h"
#include "stats/fairness.h"

namespace sfq::rt {
namespace {

constexpr double kBits = 8000.0;

Packet make_packet(FlowId flow, uint64_t seq, double bits = kBits) {
  Packet p{};
  p.flow = flow;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

uint64_t cause(const EngineStats& s, obs::DropCause c) {
  return s.drops[static_cast<std::size_t>(c)];
}

// Every offered packet that reached the dispatcher is either accepted or
// pre-enqueue dropped; spin until `n` have been resolved one way or the
// other (bounded — fails the test instead of hanging).
void wait_processed(const RtEngine& engine, uint64_t n) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    const EngineStats s = engine.stats();
    const uint64_t processed = s.accepted +
                               cause(s, obs::DropCause::kBufferLimit) +
                               cause(s, obs::DropCause::kUnknownFlow);
    if (processed >= n) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "dispatcher stalled: processed " << processed << "/" << n;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void expect_ledger(const EngineStats& s) {
  // ingress_pushed == accepted + pre-enqueue drops + abandoned
  EXPECT_EQ(s.ingress_pushed,
            s.accepted + cause(s, obs::DropCause::kUnknownFlow) +
                cause(s, obs::DropCause::kBufferLimit) + s.abandoned);
  // accepted == transmitted + backlog + post-enqueue drops
  EXPECT_EQ(s.accepted, s.transmitted + s.backlog +
                            cause(s, obs::DropCause::kPushout) +
                            cause(s, obs::DropCause::kFlowRemoved));
}

TEST(RtEngine, MultiProducerConservation) {
  SfqScheduler sched;
  for (int f = 0; f < 4; ++f) sched.add_flow(1e6, kBits);

  obs::InvariantChecker checker(
      obs::InvariantChecker::for_scheduler("SFQ"));
  SyncSink sync(checker);
  obs::Tracer tracer;
  tracer.add_sink(&sync);

  EngineOptions opts;
  opts.producers = 2;
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e9), opts);
  engine.set_tracer(&tracer);

  // Unpaced blast with blocking backpressure: every generated packet must
  // come out the other side.
  std::vector<std::vector<FlowLoad>> producers(2);
  for (FlowId f = 0; f < 4; ++f) {
    FlowLoad l;
    l.flow = f;
    l.rate = 4e7;  // 5000 packets/s of model time per flow
    l.packet_bits = kBits;
    producers[f % 2].push_back(l);
  }
  LoadGenOptions lg;
  lg.paced = false;
  lg.block_on_full = true;

  engine.start();
  LoadGen gen(engine, std::move(producers), lg);
  gen.start(/*duration=*/0.2);
  gen.join();
  engine.stop(StopMode::kDrain);
  tracer.finish();

  const EngineStats s = engine.stats();
  EXPECT_EQ(gen.produced_total(), 4u * 1000u);
  EXPECT_EQ(s.ingress_pushed, gen.produced_total());
  EXPECT_EQ(s.transmitted, gen.produced_total());
  EXPECT_EQ(s.ingress_drops, 0u);
  EXPECT_EQ(s.dropped(), 0u);
  EXPECT_EQ(s.backlog, 0u);
  EXPECT_DOUBLE_EQ(s.tx_bits, gen.produced_total() * kBits);
  expect_ledger(s);

  // Per-flow service totals add up to the link total.
  double sum = 0.0;
  for (double b : engine.service_snapshot()) sum += b;
  EXPECT_DOUBLE_EQ(sum, s.tx_bits);

  // The dispatcher replayed a legal SFQ schedule on the wall clock.
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.events_seen(), 0u);
}

TEST(RtEngine, UnknownFlowIsCountedDrop) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e9));
  engine.start();
  EXPECT_TRUE(engine.offer(0, make_packet(/*flow=*/5, 0)));
  EXPECT_TRUE(engine.offer(0, make_packet(/*flow=*/0, 1)));
  wait_processed(engine, 2);
  engine.stop(StopMode::kDrain);

  const EngineStats s = engine.stats();
  EXPECT_EQ(cause(s, obs::DropCause::kUnknownFlow), 1u);
  EXPECT_EQ(s.transmitted, 1u);
  expect_ledger(s);
}

TEST(RtEngine, BufferLimitTailDrop) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.buffer_limit = 2;  // plus at most one packet in flight
  // 0.1 s per packet: arrivals outpace service by construction.
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(8e4), opts);
  engine.start();
  for (uint64_t i = 0; i < 10; ++i)
    EXPECT_TRUE(engine.offer(0, make_packet(0, i)));
  wait_processed(engine, 10);
  engine.stop(StopMode::kAbandon);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.ingress_pushed, 10u);
  EXPECT_GT(cause(s, obs::DropCause::kBufferLimit), 0u);
  EXPECT_LE(s.accepted, 4u);  // limit + in-flight + the first dequeue race
  EXPECT_GT(s.backlog, 0u);   // kAbandon leaves the backlog in place
  expect_ledger(s);
}

TEST(RtEngine, PushoutEvictsLongestQueue) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.buffer_limit = 2;
  opts.overload_policy = net::OverloadPolicy::kPushout;
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(8e4), opts);
  engine.start();
  // Flow 0 fills the buffer, then flow 1's arrivals must push flow 0 out.
  for (uint64_t i = 0; i < 6; ++i)
    EXPECT_TRUE(engine.offer(0, make_packet(0, i)));
  for (uint64_t i = 0; i < 4; ++i)
    EXPECT_TRUE(engine.offer(0, make_packet(1, i)));
  wait_processed(engine, 10);
  engine.stop(StopMode::kAbandon);

  const EngineStats s = engine.stats();
  EXPECT_GT(cause(s, obs::DropCause::kPushout), 0u);
  EXPECT_GT(s.accepted, 0u);
  expect_ledger(s);
  // Flow 1 still has presence in the final backlog: pushout made room.
  EXPECT_GT(sched.backlog_bits(1) + engine.flow_tx_bits(1), 0.0);
}

TEST(RtEngine, OfferOutsideRunWindowIsRefused) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e9));

  EXPECT_FALSE(engine.offer(0, make_packet(0, 0)));  // before start()
  engine.start();
  engine.stop(StopMode::kDrain);
  EXPECT_FALSE(engine.offer(0, make_packet(0, 1)));  // after stop()
  EXPECT_FALSE(engine.offer_wait(0, make_packet(0, 2)));

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.ingress_drops, 3u);
  EXPECT_EQ(s.ingress_pushed, 0u);
  expect_ledger(s);
}

TEST(RtEngine, LifecycleEdges) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e9));
  engine.start();
  EXPECT_TRUE(engine.running());
  EXPECT_THROW(engine.start(), std::logic_error);
  EXPECT_THROW(engine.set_tracer(nullptr), std::logic_error);
  engine.stop(StopMode::kDrain);
  engine.stop(StopMode::kDrain);  // idempotent
  EXPECT_FALSE(engine.running());
}

// Theorem 1 on the wall clock: two continuously backlogged paced flows with
// weights 3:1 on an overloaded link; at coarse sampling instants the
// normalized service gap must stay within l_f/r_f + l_m/r_m, plus one pacing
// quantum per flow for in-flight attribution at window edges. The link is
// slow (1 ms per packet) so the bound dwarfs dispatcher jitter even under
// instrumented (TSAN/ASan) builds.
TEST(RtEngine, WallClockFairnessWithinTheorem1Bound) {
  const double rf = 6e6, rm = 2e6, cap = 8e6;
  SfqScheduler sched;
  sched.add_flow(rf, kBits);
  sched.add_flow(rm, kBits);

  EngineOptions opts;
  opts.producers = 2;
  opts.buffer_limit = 128;
  opts.overload_policy = net::OverloadPolicy::kPushout;
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(cap), opts);

  std::vector<std::vector<FlowLoad>> producers(2);
  for (FlowId f = 0; f < 2; ++f) {
    FlowLoad l;
    l.flow = f;
    l.rate = 2.0 * (f == 0 ? rf : rm);  // 2x weight: always backlogged
    l.packet_bits = kBits;
    producers[f].push_back(l);
  }

  engine.start();
  const Time t0 = engine.now();
  LoadGen gen(engine, std::move(producers), {});  // paced
  gen.start(/*duration=*/1.0);

  std::vector<std::vector<double>> snaps;
  while (engine.now() - t0 < 1.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    snaps.push_back(engine.service_snapshot());
  }
  gen.join();
  engine.stop(StopMode::kDrain);

  const double bound = stats::sfq_fairness_bound(kBits, rf, kBits, rm);
  const double slack = kBits / rf + kBits / rm;
  const std::size_t lo = snaps.size() / 4;
  const std::size_t hi = snaps.size() - snaps.size() / 4;
  ASSERT_GT(hi, lo + 2) << "too few snapshots";
  double worst = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    for (std::size_t j = i + 1; j < hi; ++j) {
      const double gap = std::abs((snaps[j][0] - snaps[i][0]) / rf -
                                  (snaps[j][1] - snaps[i][1]) / rm);
      if (gap > worst) worst = gap;
    }
  }
  EXPECT_LE(worst, bound + slack)
      << "worst normalized gap " << worst << "s over Theorem-1 bound "
      << bound << "s (+" << slack << "s slack)";
  // Both flows made progress roughly in weight proportion overall.
  EXPECT_GT(engine.flow_tx_bits(0), engine.flow_tx_bits(1));
}

// A discipline that accepts packets but never serves them — the pathology
// the stall watchdog exists for. Without the watchdog the dispatcher spins
// forever with obligations it can never discharge.
class HoardingScheduler final : public SfqScheduler {
 public:
  using SfqScheduler::SfqScheduler;
  std::optional<Packet> dequeue(Time) override { return std::nullopt; }
};

TEST(RtEngine, StallWatchdogStopsAWedgedDispatcher) {
  HoardingScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.stall_timeout = 0.05;
  opts.restart_budget = 0;  // no restarts: first stall stops permanently
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e9), opts);
  engine.start();
  for (uint64_t i = 0; i < 4; ++i)
    EXPECT_TRUE(engine.offer(0, make_packet(0, i)));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!engine.stalled() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(engine.stalled()) << "watchdog never fired";

  // A stalled engine refuses new work instead of queueing it into the void.
  EXPECT_FALSE(engine.offer(0, make_packet(0, 99)));
  engine.stop(StopMode::kAbandon);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.stalls, 1u);
  EXPECT_EQ(s.recoveries, 0u);
  EXPECT_EQ(s.last_stall_stage, StallStage::kSchedule);  // wedged discipline
  EXPECT_EQ(s.transmitted, 0u);
  EXPECT_EQ(s.backlog, 4u);  // hoarded packets stay visible in the ledger
  expect_ledger(s);
}

TEST(RtEngine, RestartBudgetExhaustsAgainstAPermanentWedge) {
  // With a budget, the watchdog restarts the dispatcher budget-many times
  // before giving up; a scheduler that never serves defeats every restart.
  HoardingScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.stall_timeout = 0.02;
  opts.restart_budget = 2;
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e9), opts);
  engine.start();
  for (uint64_t i = 0; i < 4; ++i)
    EXPECT_TRUE(engine.offer(0, make_packet(0, i)));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!engine.stalled() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(engine.stalled()) << "watchdog never gave up";
  engine.stop(StopMode::kAbandon);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.stalls, 3u);  // budget retries + the final escalation
  EXPECT_EQ(s.recoveries, 0u);
  EXPECT_EQ(s.backlog, 4u);
  expect_ledger(s);
}

TEST(RtEngine, HealthyRunNeverTripsTheWatchdog) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.stall_timeout = 0.5;  // far above the 8 us per-packet service time
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e9), opts);
  engine.start();
  for (uint64_t i = 0; i < 50; ++i)
    EXPECT_TRUE(engine.offer_wait(0, make_packet(0, i)));
  wait_processed(engine, 50);
  engine.stop(StopMode::kDrain);
  EXPECT_FALSE(engine.stalled());
  EXPECT_EQ(engine.stats().stalls, 0u);
  EXPECT_EQ(engine.stats().transmitted, 50u);
}

TEST(RtEngine, CaptureRecordsTheFullOpSequence) {
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  sched.add_flow(3e6, kBits);
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e8));
  std::vector<CaptureOp> ops;
  engine.set_capture(&ops);
  engine.start();
  EXPECT_THROW(engine.set_capture(nullptr), std::logic_error);
  for (uint64_t i = 0; i < 30; ++i)
    EXPECT_TRUE(engine.offer_wait(0, make_packet(i % 2, i / 2)));
  wait_processed(engine, 30);
  engine.stop(StopMode::kDrain);

  // The op log is a complete account: one enqueue per accepted packet, one
  // dequeue + one complete per transmission, in non-decreasing time order.
  const EngineStats s = engine.stats();
  uint64_t enq = 0, deq = 0, done = 0;
  Time prev = 0.0;
  for (const CaptureOp& op : ops) {
    switch (op.kind) {
      case CaptureOp::Kind::kEnqueue: ++enq; break;
      case CaptureOp::Kind::kDequeue: ++deq; break;
      case CaptureOp::Kind::kComplete: ++done; break;
      case CaptureOp::Kind::kPushout: break;
      case CaptureOp::Kind::kRemove: break;   // residency ops: failover only
      case CaptureOp::Kind::kRejoin: break;
    }
    EXPECT_GE(op.t, prev);
    prev = op.t;
  }
  EXPECT_EQ(enq, s.accepted);
  EXPECT_EQ(deq, s.transmitted);
  EXPECT_EQ(done, s.transmitted);
  EXPECT_EQ(s.transmitted, 30u);
  // Dequeues carry the tags the live scheduler assigned — the raw material
  // for the chaos harness's sim replay (S(p) = max(v(A), F_prev) both hold
  // trivially here with one packet per flow outstanding at the head).
  for (const CaptureOp& op : ops) {
    if (op.kind == CaptureOp::Kind::kDequeue) {
      EXPECT_GT(op.packet.finish_tag, op.packet.start_tag);
    }
  }
}

TEST(RtEngine, TelemetryPlaneMirrorsTheLedger) {
  namespace tel = obs::telemetry;
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.buffer_limit = 4;  // force buffer_limit drops
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(4e5), opts);
  tel::Telemetry plane;
  engine.set_telemetry(&plane);
  EXPECT_EQ(engine.telemetry(), &plane);

  engine.start();
  for (uint64_t i = 1; i <= 40; ++i) {
    engine.offer_wait(0, make_packet(i % 2, i));
    engine.offer(0, make_packet(/*flow=*/7, i));  // unknown: pre-drop
  }
  wait_processed(engine, 80);
  engine.stop(StopMode::kDrain);

  const EngineStats s = engine.stats();
  const tel::TelemetrySnapshot snap = plane.snapshot();
  auto c = [&](tel::CounterId id) { return snap.counter_total(id); };
  EXPECT_EQ(c(tel::CounterId::kIngressPushed), s.ingress_pushed);
  EXPECT_EQ(c(tel::CounterId::kAccepted), s.accepted);
  EXPECT_EQ(c(tel::CounterId::kTransmitted), s.transmitted);
  EXPECT_EQ(c(tel::CounterId::kTxBits), static_cast<uint64_t>(s.tx_bits));
  EXPECT_EQ(c(tel::CounterId::kAbandoned), s.abandoned);
  EXPECT_EQ(c(tel::CounterId::kDropUnknownFlow),
            cause(s, obs::DropCause::kUnknownFlow));
  EXPECT_EQ(c(tel::CounterId::kDropBufferLimit),
            cause(s, obs::DropCause::kBufferLimit));
  EXPECT_EQ(c(tel::CounterId::kDropUnknownFlow), 40u);
  EXPECT_GT(c(tel::CounterId::kDropBufferLimit), 0u);

  // The enqueue->transmit histogram saw every transmitted packet; the dwell
  // histogram is 1-in-8 sampled on the dispatcher, so its count is the
  // sample count, not the inject count.
  EXPECT_EQ(snap.hist_total(tel::HistId::kQueueDelay).count, s.transmitted);
  EXPECT_EQ(snap.hist_total(tel::HistId::kIngressDwell).count,
            s.ingress_pushed / 8);
  EXPECT_GT(snap.hist_total(tel::HistId::kQueueDelay).quantile_s(0.5), 0.0);

  // The dispatcher's exit pass published the final backlog gauge.
  EXPECT_EQ(snap.gauge(tel::GaugeId::kBacklogPackets, 0),
            static_cast<double>(s.backlog));
}

TEST(RtEngine, StatsThreadPublishesOverHttp) {
  namespace tel = obs::telemetry;
  SfqScheduler sched;
  sched.add_flow(1e6, kBits);
  EngineOptions opts;
  opts.stats_interval = 0.02;
  opts.stats_port = 0;  // ephemeral
  RtEngine engine(sched, std::make_unique<net::ConstantRate>(1e8), opts);
  tel::Telemetry plane;
  engine.set_telemetry(&plane);
  engine.start();
  ASSERT_GT(engine.stats_endpoint_port(), 0);
  for (uint64_t i = 1; i <= 50; ++i) engine.offer_wait(0, make_packet(0, i));
  wait_processed(engine, 50);
  engine.stop(StopMode::kDrain);
  // stop() runs a final publish pass; the endpoint stays live until the
  // engine is destroyed, so a late scrape sees the settled totals.
  const tel::TelemetrySnapshot snap = plane.snapshot();
  EXPECT_EQ(snap.counter_total(tel::CounterId::kTransmitted), 50u);
  EXPECT_EQ(snap.gauge(tel::GaugeId::kBacklogPackets, 0), 0.0);
}

}  // namespace
}  // namespace sfq::rt
