#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "traffic/leaky_bucket.h"
#include "traffic/sources.h"
#include "traffic/vbr_video.h"

namespace sfq::traffic {
namespace {

struct Capture {
  std::vector<Time> times;
  std::vector<double> sizes;
  std::vector<uint64_t> seqs;
  Source::EmitFn fn(sim::Simulator& sim) {
    return [this, &sim](Packet p) {
      times.push_back(sim.now());
      sizes.push_back(p.length_bits);
      seqs.push_back(p.seq);
    };
  }
};

TEST(CbrSource, EmitsOnSchedule) {
  sim::Simulator sim;
  Capture cap;
  CbrSource src(sim, 0, cap.fn(sim), /*rate=*/100.0, /*packet=*/10.0);
  src.run(1.0, 1.45);
  sim.run();
  // Packets at 1.0, 1.1, 1.2, 1.3, 1.4 (strictly before 1.45).
  ASSERT_EQ(cap.times.size(), 5u);
  EXPECT_DOUBLE_EQ(cap.times.front(), 1.0);
  EXPECT_DOUBLE_EQ(cap.times.back(), 1.4);
  EXPECT_EQ(cap.seqs, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
}

TEST(CbrSource, RateMatchesConfiguration) {
  sim::Simulator sim;
  Capture cap;
  CbrSource src(sim, 0, cap.fn(sim), 1000.0, 50.0);
  src.run(0.0, 10.0);
  sim.run();
  double bits = 0.0;
  for (double s : cap.sizes) bits += s;
  EXPECT_NEAR(bits / 10.0, 1000.0, 10.0);
}

TEST(PoissonSource, MeanRateConverges) {
  sim::Simulator sim;
  Capture cap;
  PoissonSource src(sim, 0, cap.fn(sim), 2000.0, 40.0, /*seed=*/13);
  src.run(0.0, 50.0);
  sim.run();
  double bits = 0.0;
  for (double s : cap.sizes) bits += s;
  EXPECT_NEAR(bits / 50.0, 2000.0, 2000.0 * 0.06);
}

TEST(PoissonSource, InterarrivalsAreVariable) {
  sim::Simulator sim;
  Capture cap;
  PoissonSource src(sim, 0, cap.fn(sim), 1000.0, 100.0, 7);
  src.run(0.0, 20.0);
  sim.run();
  ASSERT_GT(cap.times.size(), 20u);
  double mean = 0.0, var = 0.0;
  std::vector<double> gaps;
  for (std::size_t i = 1; i < cap.times.size(); ++i)
    gaps.push_back(cap.times[i] - cap.times[i - 1]);
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  // Exponential: std ~ mean; CBR would have var = 0.
  EXPECT_GT(var, 0.25 * mean * mean);
}

TEST(OnOffSource, BurstsAndSilences) {
  sim::Simulator sim;
  Capture cap;
  OnOffSource src(sim, 0, cap.fn(sim), /*peak=*/1000.0, /*packet=*/10.0,
                  /*mean_on=*/0.05, /*mean_off=*/0.2, /*seed=*/3);
  src.run(0.0, 30.0);
  sim.run();
  ASSERT_GT(cap.times.size(), 50u);
  // Long-run rate must be well below the peak (off periods dominate).
  double bits = 0.0;
  for (double s : cap.sizes) bits += s;
  EXPECT_LT(bits / 30.0, 600.0);
  // And at least one silence much longer than the on-period spacing exists.
  double max_gap = 0.0;
  for (std::size_t i = 1; i < cap.times.size(); ++i)
    max_gap = std::max(max_gap, cap.times[i] - cap.times[i - 1]);
  EXPECT_GT(max_gap, 0.05);
}

TEST(TraceSource, ReplaysExactly) {
  sim::Simulator sim;
  Capture cap;
  TraceSource src(sim, 0, cap.fn(sim),
                  {{0.5, 10.0}, {0.75, 20.0}, {2.0, 30.0}});
  src.run(0.0, 10.0);
  sim.run();
  EXPECT_EQ(cap.times, (std::vector<Time>{0.5, 0.75, 2.0}));
  EXPECT_EQ(cap.sizes, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(TraceSource, StopsAtUntil) {
  sim::Simulator sim;
  Capture cap;
  TraceSource src(sim, 0, cap.fn(sim), {{0.5, 1.0}, {5.0, 1.0}});
  src.run(0.0, 1.0);
  sim.run();
  EXPECT_EQ(cap.times.size(), 1u);
}

// --- MPEG VBR ---------------------------------------------------------------

TEST(MpegVbr, AverageRateCalibrated) {
  sim::Simulator sim;
  Capture cap;
  MpegVbrSource::Params p;
  p.average_rate = 1.21e6;
  p.packet_bits = 400.0;  // 50-byte packets
  p.seed = 21;
  MpegVbrSource src(sim, 0, cap.fn(sim), p);
  src.run(0.0, 20.0);
  sim.run();
  double bits = 0.0;
  for (double s : cap.sizes) bits += s;
  EXPECT_NEAR(bits / 20.0, 1.21e6, 1.21e6 * 0.1);
}

TEST(MpegVbr, FrameTypeMeansFollowGopRatios) {
  sim::Simulator sim;
  Capture cap;
  MpegVbrSource::Params p;
  MpegVbrSource src(sim, 0, cap.fn(sim), p);
  EXPECT_NEAR(src.mean_frame_bits('I') / src.mean_frame_bits('B'), 5.0, 1e-9);
  EXPECT_NEAR(src.mean_frame_bits('I') / src.mean_frame_bits('P'), 2.5, 1e-9);
}

TEST(MpegVbr, PacketsNoLargerThanMtu) {
  sim::Simulator sim;
  Capture cap;
  MpegVbrSource::Params p;
  p.packet_bits = 400.0;
  MpegVbrSource src(sim, 0, cap.fn(sim), p);
  src.run(0.0, 3.0);
  sim.run();
  for (double s : cap.sizes) EXPECT_LE(s, 400.0 + 1e-9);
}

TEST(MpegVbr, BurstyAtFrameBoundaries) {
  sim::Simulator sim;
  Capture cap;
  MpegVbrSource::Params p;
  p.seed = 4;
  MpegVbrSource src(sim, 0, cap.fn(sim), p);
  src.run(0.0, 1.0);
  sim.run();
  // Many packets share the same timestamp (one burst per frame, 30 fps).
  std::size_t same = 0;
  for (std::size_t i = 1; i < cap.times.size(); ++i)
    if (cap.times[i] == cap.times[i - 1]) ++same;
  EXPECT_GT(same, cap.times.size() / 2);
}

// --- Leaky bucket ------------------------------------------------------------

TEST(LeakyBucket, ConformingTrafficPassesUnchanged) {
  sim::Simulator sim;
  std::vector<Time> out;
  LeakyBucketShaper lb(sim, /*sigma=*/100.0, /*rho=*/100.0,
                       [&](Packet) { out.push_back(sim.now()); });
  Packet p;
  p.flow = 0;
  p.length_bits = 50.0;
  sim.at(0.0, [&] { lb.inject(p); });
  sim.at(1.0, [&] { lb.inject(p); });
  sim.run();
  EXPECT_EQ(out, (std::vector<Time>{0.0, 1.0}));
}

TEST(LeakyBucket, BurstBeyondSigmaIsSmoothed) {
  sim::Simulator sim;
  std::vector<Time> out;
  LeakyBucketShaper lb(sim, /*sigma=*/100.0, /*rho=*/50.0,
                       [&](Packet) { out.push_back(sim.now()); });
  Packet p;
  p.length_bits = 100.0;
  sim.at(0.0, [&] {
    lb.inject(p);  // consumes the full bucket
    lb.inject(p);  // must wait 2 s for refill
    lb.inject(p);  // 2 more
  });
  sim.run();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
}

TEST(LeakyBucket, ShaperOutputConformsToMeter) {
  // Property: for random input, shaped output always satisfies the meter.
  sim::Simulator sim;
  LeakyBucketMeter meter(200.0, 500.0);
  bool ok = true;
  LeakyBucketShaper lb(sim, 200.0, 500.0, [&](Packet q) {
    ok = ok && meter.observe(sim.now(), q.length_bits);
  });
  std::mt19937_64 rng(31);
  std::exponential_distribution<double> gap(20.0);
  Time t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += gap(rng);
    Packet q;
    q.length_bits = 10.0 + static_cast<double>(rng() % 150);
    sim.at(t, [&lb, q] { lb.inject(q); });
  }
  sim.run();
  EXPECT_TRUE(ok);
}

TEST(LeakyBucketMeter, FlagsViolation) {
  LeakyBucketMeter meter(100.0, 10.0);
  EXPECT_TRUE(meter.observe(0.0, 100.0));   // uses the whole bucket
  EXPECT_FALSE(meter.observe(0.1, 100.0));  // only ~1 bit refilled
}

}  // namespace
}  // namespace sfq::traffic
