#include <gtest/gtest.h>

#include <memory>

#include "core/sfq_scheduler.h"
#include "net/priority_server.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sched/fifo_scheduler.h"
#include "sim/simulator.h"
#include "stats/service_recorder.h"
#include "traffic/sources.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

TEST(ScheduledServer, TransmitsAtLinkRate) {
  sim::Simulator sim;
  FifoScheduler sched;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(10.0));
  Time departed = -1.0;
  server.set_departure([&](const Packet&, Time t) { departed = t; });
  sim.at(1.0, [&] { server.inject(mk(0, 1, 20.0)); });
  sim.run();
  EXPECT_DOUBLE_EQ(departed, 3.0);  // 20 bits / 10 bps from t=1
}

TEST(ScheduledServer, WorkConservingBackToBack) {
  sim::Simulator sim;
  FifoScheduler sched;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(10.0));
  std::vector<Time> departures;
  server.set_departure([&](const Packet&, Time t) { departures.push_back(t); });
  sim.at(0.0, [&] {
    server.inject(mk(0, 1, 10.0));
    server.inject(mk(0, 2, 10.0));
    server.inject(mk(0, 3, 10.0));
  });
  sim.run();
  EXPECT_EQ(departures, (std::vector<Time>{1.0, 2.0, 3.0}));
}

TEST(ScheduledServer, IdleUntilArrival) {
  sim::Simulator sim;
  FifoScheduler sched;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(1.0));
  EXPECT_FALSE(server.busy());
  std::vector<Time> departures;
  server.set_departure([&](const Packet&, Time t) { departures.push_back(t); });
  sim.at(0.0, [&] { server.inject(mk(0, 1, 1.0)); });
  sim.at(5.0, [&] { server.inject(mk(0, 2, 1.0)); });
  sim.run();
  EXPECT_EQ(departures, (std::vector<Time>{1.0, 6.0}));
}

TEST(ScheduledServer, BufferLimitDropsTail) {
  sim::Simulator sim;
  FifoScheduler sched;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(1.0));
  server.set_buffer_limit(2);
  int dropped = 0;
  server.set_drop([&](const Packet&, Time) { ++dropped; });
  sim.at(0.0, [&] {
    EXPECT_TRUE(server.inject(mk(0, 1, 100.0)));  // goes into service
    EXPECT_TRUE(server.inject(mk(0, 2, 1.0)));    // queued (1)
    EXPECT_TRUE(server.inject(mk(0, 3, 1.0)));    // queued (2)
    EXPECT_FALSE(server.inject(mk(0, 4, 1.0)));   // dropped
  });
  sim.run();
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(server.drops(), 1u);
}

TEST(ScheduledServer, RecorderSeesArrivalsAndService) {
  sim::Simulator sim;
  FifoScheduler sched;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(10.0));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);
  sim.at(0.0, [&] {
    server.inject(mk(0, 1, 10.0));
    server.inject(mk(1, 1, 20.0));
  });
  sim.run();
  rec.finish(sim.now());
  ASSERT_EQ(rec.transmissions().size(), 2u);
  EXPECT_DOUBLE_EQ(rec.transmissions()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(rec.transmissions()[0].end, 1.0);
  EXPECT_DOUBLE_EQ(rec.transmissions()[1].start, 1.0);
  EXPECT_DOUBLE_EQ(rec.transmissions()[1].end, 3.0);
  ASSERT_EQ(rec.backlog_intervals(0).size(), 1u);
  EXPECT_DOUBLE_EQ(rec.backlog_intervals(0)[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(rec.backlog_intervals(0)[0].end, 1.0);
  ASSERT_EQ(rec.backlog_intervals(1).size(), 1u);
  EXPECT_DOUBLE_EQ(rec.backlog_intervals(1)[0].end, 3.0);
}

TEST(ScheduledServer, NonPreemptiveAcrossRateDrop) {
  // A packet started under high rate keeps transmitting through a rate drop;
  // finish time integrates the profile.
  sim::Simulator sim;
  FifoScheduler sched;
  auto profile = std::make_unique<net::PiecewiseConstantRate>(
      std::vector<net::PiecewiseConstantRate::Segment>{{0.0, 10.0},
                                                       {1.0, 2.0}});
  net::ScheduledServer server(sim, sched, std::move(profile));
  Time departed = -1.0;
  server.set_departure([&](const Packet&, Time t) { departed = t; });
  sim.at(0.5, [&] { server.inject(mk(0, 1, 9.0)); });
  sim.run();
  // 5 bits by t=1 (rate 10), remaining 4 bits at rate 2 -> t=3.
  EXPECT_DOUBLE_EQ(departed, 3.0);
}

// --- PriorityServer ---------------------------------------------------------

TEST(PriorityServer, HighPriorityAlwaysWins) {
  sim::Simulator sim;
  SfqScheduler low;
  FlowId lf = low.add_flow(1.0);
  net::PriorityServer server(sim, low,
                             std::make_unique<net::ConstantRate>(10.0));
  std::vector<std::pair<char, Time>> log;
  server.set_high_departure(
      [&](const Packet&, Time t) { log.push_back({'H', t}); });
  server.set_low_departure(
      [&](const Packet&, Time t) { log.push_back({'L', t}); });

  sim.at(0.0, [&] {
    Packet lo = mk(lf, 1, 10.0);
    server.inject_low(std::move(lo));
    Packet hi1 = mk(0, 1, 10.0);
    Packet hi2 = mk(0, 2, 10.0);
    server.inject_high(std::move(hi1));
    server.inject_high(std::move(hi2));
  });
  sim.run();
  // Low packet grabbed the idle link first (non-preemptive), then both
  // high-priority packets go ahead of nothing else.
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 'L');
  EXPECT_EQ(log[1].first, 'H');
  EXPECT_EQ(log[2].first, 'H');
}

TEST(PriorityServer, LowClassSeesResidualCapacity) {
  // HP stream takes half the link; the LP flow should see ~half throughput.
  sim::Simulator sim;
  SfqScheduler low;
  FlowId lf = low.add_flow(1.0);
  net::PriorityServer server(sim, low,
                             std::make_unique<net::ConstantRate>(100.0));
  stats::ServiceRecorder rec;
  server.set_low_recorder(&rec);

  traffic::CbrSource hp(sim, 0,
                        [&](Packet p) { server.inject_high(std::move(p)); },
                        50.0, 10.0);
  traffic::CbrSource lp(sim, lf,
                        [&](Packet p) { server.inject_low(std::move(p)); },
                        200.0, 10.0);
  hp.run(0.0, 10.0);
  lp.run(0.0, 10.0);
  sim.run_until(10.0);
  rec.finish(10.0);

  const double lp_rate = rec.served_bits(lf) / 10.0;
  EXPECT_NEAR(lp_rate, 50.0, 5.0);
}

TEST(PriorityServer, HighBacklogVisible) {
  sim::Simulator sim;
  SfqScheduler low;
  net::PriorityServer server(sim, low,
                             std::make_unique<net::ConstantRate>(1.0));
  sim.at(0.0, [&] {
    server.inject_high(mk(0, 1, 5.0));
    server.inject_high(mk(0, 2, 3.0));
  });
  sim.run_until(0.0);
  // First is in service, second queued.
  EXPECT_DOUBLE_EQ(server.high_backlog_bits(), 3.0);
}

}  // namespace
}  // namespace sfq
