#include <gtest/gtest.h>

#include <memory>

#include "harness.h"
#include "net/rate_profile.h"
#include "qos/admission.h"
#include "qos/bounds.h"
#include "sched/edd_scheduler.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits, Time arrival) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  p.arrival = arrival;
  return p;
}

TEST(Edd, DeadlineIsEatPlusOffset) {
  EddScheduler s;
  FlowId f = s.add_flow_with_deadline(2.0, /*deadline=*/0.5);
  s.enqueue(mk(f, 1, 4.0, 0.0), 0.0);  // EAT=0, D=0.5
  s.enqueue(mk(f, 2, 4.0, 0.0), 0.0);  // EAT=2, D=2.5
  auto p1 = s.dequeue(0.0);
  ASSERT_TRUE(p1);
  EXPECT_DOUBLE_EQ(p1->finish_tag, 0.5);
  auto p2 = s.dequeue(0.0);
  ASSERT_TRUE(p2);
  EXPECT_DOUBLE_EQ(p2->finish_tag, 2.5);
}

TEST(Edd, EarliestDeadlineFirstAcrossFlows) {
  EddScheduler s;
  FlowId lax = s.add_flow_with_deadline(1.0, 5.0);
  FlowId tight = s.add_flow_with_deadline(1.0, 0.1);
  s.enqueue(mk(lax, 1, 1.0, 0.0), 0.0);
  s.enqueue(mk(tight, 1, 1.0, 0.0), 0.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, tight);
}

// --- Schedulability test, eq. (67) -----------------------------------------

TEST(EddAdmission, AcceptsFeasibleSet) {
  // Two flows, each with rate 100 b/s, packets 50 bits, deadline 1 s on a
  // 1000 b/s link: demand is far below capacity.
  std::vector<qos::EddFlow> flows = {{100.0, 50.0, 1.0}, {100.0, 50.0, 1.0}};
  EXPECT_TRUE(qos::edd_schedulable(flows, 1000.0));
}

TEST(EddAdmission, RejectsOverCapacity) {
  std::vector<qos::EddFlow> flows = {{600.0, 50.0, 1.0}, {600.0, 50.0, 1.0}};
  EXPECT_FALSE(qos::edd_schedulable(flows, 1000.0));
}

TEST(EddAdmission, RejectsDeadlineTighterThanServiceTime) {
  // One flow wants each 500-bit packet out within 0.1 s, but its reserved
  // rate only justifies one packet per second and a competitor eats slack.
  std::vector<qos::EddFlow> flows = {
      {400.0, 500.0, 0.1},  // needs 500 bits within 0.1 s => 5000 b/s burst
      {400.0, 500.0, 1.0},
  };
  // C = 1000: at t = 0.1+, demand is 500 (flow 1) but capacity*t = 100.
  EXPECT_FALSE(qos::edd_schedulable(flows, 1000.0));
}

TEST(EddAdmission, TightButFeasibleSingleFlow) {
  // d = l/C exactly: demand at t = d+ is l = C*d. Feasible.
  std::vector<qos::EddFlow> flows = {{100.0, 100.0, 0.1}};
  EXPECT_TRUE(qos::edd_schedulable(flows, 1000.0));
}

TEST(EddAdmission, EqualRateSumNeedsHorizon) {
  std::vector<qos::EddFlow> flows = {{500.0, 50.0, 1.0}, {500.0, 50.0, 1.0}};
  EXPECT_THROW(qos::edd_schedulable(flows, 1000.0), std::invalid_argument);
  EXPECT_TRUE(qos::edd_schedulable(flows, 1000.0, /*horizon=*/100.0));
}

// --- Theorem 7: Delay-EDD on an FC server -----------------------------------

TEST(Edd, TheoremSevenDeadlinesMetOnFcServer) {
  const double C = 1000.0, delta = 100.0, len = 50.0;
  std::vector<qos::EddFlow> spec = {
      {300.0, len, 0.3}, {300.0, len, 0.5}, {200.0, len, 0.8}};
  ASSERT_TRUE(qos::edd_schedulable(spec, C));

  EddScheduler s;
  sim::Simulator sim;
  std::vector<FlowId> ids;
  for (const auto& f : spec)
    ids.push_back(s.add_flow_with_deadline(f.rate, f.deadline, f.packet_bits));
  net::ScheduledServer server(
      sim, s, std::make_unique<net::FcOnOffRate>(C, delta, 0.5));

  // Track deadline D(p) per packet (EAT + d_f) and check the Theorem 7 slack.
  qos::PerFlowEat eat;
  std::vector<std::vector<Time>> deadlines(ids.size());
  Time worst_overrun = -kTimeInfinity;
  server.set_departure([&](const Packet& p, Time t) {
    const Time d = deadlines[p.flow][p.seq - 1];
    worst_overrun = std::max(worst_overrun, t - d);
  });
  auto emit = [&](Packet p) {
    const Time e =
        eat.on_arrival(p.flow, sim.now(), p.length_bits, spec[p.flow].rate);
    deadlines[p.flow].push_back(e + spec[p.flow].deadline);
    server.inject(std::move(p));
  };

  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    sources.push_back(std::make_unique<traffic::PoissonSource>(
        sim, ids[i], emit, spec[i].rate * 0.9, len, 7 + i));
    sources.back()->run(0.0, 10.0);
  }
  sim.run_until(10.0);
  sim.run();

  const Time slack = qos::edd_fc_delay_slack({C, delta}, len);
  EXPECT_LE(worst_overrun, slack + 1e-9);
}

}  // namespace
}  // namespace sfq
