// Discipline-independent invariants, swept over every scheduler in the
// library under randomized workloads:
//   1. work conservation — the server never idles while packets are queued;
//   2. per-flow FIFO — a flow's packets depart in arrival order;
//   3. conservation — every injected packet departs exactly once (no loss,
//      no duplication) once the queue drains;
//   4. tag sanity — schedulers never hand out a packet for an unknown flow
//      and report consistent backlog accounting;
//   5. drop injection — with a tiny buffer, drops + deliveries add up and
//      nothing crashes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "core/sfq_scheduler.h"
#include "hier/hsfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sched/drr_scheduler.h"
#include "sched/edd_scheduler.h"
#include "sched/fair_airport.h"
#include "sched/fifo_scheduler.h"
#include "sched/scfq_scheduler.h"
#include "sched/virtual_clock.h"
#include "sched/wfq_scheduler.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

namespace sfq {
namespace {

constexpr double kCap = 1000.0;

std::unique_ptr<Scheduler> make(const std::string& name) {
  if (name == "SFQ") return std::make_unique<SfqScheduler>();
  if (name == "SCFQ") return std::make_unique<ScfqScheduler>();
  if (name == "WFQ") return std::make_unique<WfqScheduler>(kCap);
  if (name == "FQS") return std::make_unique<FqsScheduler>(kCap);
  if (name == "DRR") return std::make_unique<DrrScheduler>(100.0);
  if (name == "VC") return std::make_unique<VirtualClockScheduler>();
  if (name == "EDD") return std::make_unique<EddScheduler>();
  if (name == "FIFO") return std::make_unique<FifoScheduler>();
  if (name == "FairAirport") return std::make_unique<FairAirportScheduler>();
  if (name == "HSFQ") return std::make_unique<hier::HsfqScheduler>();
  throw std::invalid_argument(name);
}

class EverySchedulerProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(EverySchedulerProperty, WorkConservationFifoAndConservation) {
  auto sched = make(GetParam());
  sim::Simulator sim;
  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(kCap));

  const int n_flows = 4;
  std::vector<FlowId> ids;
  for (int i = 0; i < n_flows; ++i)
    ids.push_back(sched->add_flow(100.0 + 50.0 * i, 60.0));

  std::vector<uint64_t> last_seq(n_flows, 0);
  std::vector<uint64_t> delivered(n_flows, 0);
  double busy_bits = 0.0;
  server.set_departure([&](const Packet& p, Time) {
    // Per-flow FIFO.
    EXPECT_EQ(p.seq, last_seq[p.flow] + 1) << GetParam();
    last_seq[p.flow] = p.seq;
    ++delivered[p.flow];
    busy_bits += p.length_bits;
  });

  std::vector<std::unique_ptr<traffic::Source>> src;
  std::vector<uint64_t> seeds = {3, 5, 7, 11};
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  for (int i = 0; i < n_flows; ++i) {
    src.push_back(std::make_unique<traffic::PoissonSource>(
        sim, ids[i], emit, 300.0, 60.0, seeds[i]));
    src.back()->run(0.0, 10.0);
  }
  sim.run_until(10.0);

  // Work conservation: the offered load (4 x 300 = 1200 > C) keeps the
  // server saturated, so service time ~= capacity * elapsed.
  EXPECT_GT(busy_bits, 0.95 * kCap * 10.0) << GetParam();

  sim.run();  // drain
  for (int i = 0; i < n_flows; ++i) {
    EXPECT_EQ(delivered[i], src[i]->emitted()) << GetParam() << " flow " << i;
  }
  EXPECT_TRUE(sched->empty()) << GetParam();
  EXPECT_EQ(sched->backlog_packets(), 0u) << GetParam();
}

TEST_P(EverySchedulerProperty, BacklogAccountingMatchesInjections) {
  auto sched = make(GetParam());
  FlowId a = sched->add_flow(100.0, 50.0);
  FlowId b = sched->add_flow(200.0, 50.0);

  auto mk = [](FlowId f, uint64_t seq, double bits) {
    Packet p;
    p.flow = f;
    p.seq = seq;
    p.length_bits = bits;
    return p;
  };
  sched->enqueue(mk(a, 1, 10.0), 0.0);
  sched->enqueue(mk(a, 2, 20.0), 0.0);
  sched->enqueue(mk(b, 1, 30.0), 0.0);
  EXPECT_EQ(sched->backlog_packets(), 3u) << GetParam();
  EXPECT_DOUBLE_EQ(sched->backlog_bits(a), 30.0);
  EXPECT_DOUBLE_EQ(sched->backlog_bits(b), 30.0);
  EXPECT_FALSE(sched->empty());

  std::size_t served = 0;
  while (auto p = sched->dequeue(0.0)) {
    sched->on_transmit_complete(*p, 0.0);
    ++served;
  }
  EXPECT_EQ(served, 3u);
  EXPECT_TRUE(sched->empty());
  EXPECT_DOUBLE_EQ(sched->backlog_bits(a), 0.0);
}

TEST_P(EverySchedulerProperty, SurvivesDropInjection) {
  auto sched = make(GetParam());
  sim::Simulator sim;
  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(kCap));
  server.set_buffer_limit(4);

  FlowId a = sched->add_flow(400.0, 80.0);
  FlowId b = sched->add_flow(600.0, 80.0);
  uint64_t delivered = 0, dropped = 0;
  server.set_departure([&](const Packet&, Time) { ++delivered; });
  server.set_drop([&](const Packet&, Time) { ++dropped; });

  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource sa(sim, a, emit, 2000.0, 80.0);  // 4x overload
  traffic::CbrSource sb(sim, b, emit, 2000.0, 80.0);
  sa.run(0.0, 5.0);
  sb.run(0.0, 5.0);
  sim.run_until(5.0);
  sim.run();

  EXPECT_GT(dropped, 0u) << GetParam();
  EXPECT_EQ(delivered + dropped, sa.emitted() + sb.emitted()) << GetParam();
  EXPECT_TRUE(sched->empty()) << GetParam();
}

TEST_P(EverySchedulerProperty, EmptyDequeueIsStable) {
  auto sched = make(GetParam());
  sched->add_flow(100.0, 10.0);
  EXPECT_FALSE(sched->dequeue(0.0));
  EXPECT_FALSE(sched->dequeue(1.0));
  EXPECT_TRUE(sched->empty());
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, EverySchedulerProperty,
                         ::testing::Values("SFQ", "SCFQ", "WFQ", "FQS", "DRR",
                                           "VC", "EDD", "FIFO", "FairAirport",
                                           "HSFQ"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace sfq
