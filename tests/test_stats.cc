#include <gtest/gtest.h>

#include "stats/delay_stats.h"
#include "stats/fairness.h"
#include "stats/service_recorder.h"
#include "stats/time_series.h"

namespace sfq::stats {
namespace {

// --- ServiceRecorder ---------------------------------------------------------

TEST(ServiceRecorder, ServedBitsCountsWholePacketsOnly) {
  ServiceRecorder rec;
  rec.on_arrival(0, 0.0);
  rec.on_arrival(0, 0.0);
  rec.on_service(0, 10.0, 0.0, 0.0, 1.0);
  rec.on_service(0, 10.0, 0.0, 1.0, 2.0);
  rec.finish(2.0);
  // W(t1,t2) requires start >= t1 AND end <= t2 (paper §1.2).
  EXPECT_DOUBLE_EQ(rec.served_bits(0, 0.0, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(rec.served_bits(0, 0.5, 2.0), 10.0);  // first straddles t1
  EXPECT_DOUBLE_EQ(rec.served_bits(0, 0.0, 1.5), 10.0);  // second straddles t2
  EXPECT_DOUBLE_EQ(rec.served_bits(0, 0.5, 1.5), 0.0);
}

TEST(ServiceRecorder, BacklogIntervalsOpenAndClose) {
  ServiceRecorder rec;
  rec.on_arrival(0, 1.0);
  rec.on_service(0, 5.0, 1.0, 1.0, 2.0);
  rec.on_arrival(0, 4.0);
  rec.on_arrival(0, 4.5);
  rec.on_service(0, 5.0, 4.0, 4.5, 5.0);
  rec.on_service(0, 5.0, 4.5, 5.0, 6.0);
  rec.finish(10.0);
  const auto& iv = rec.backlog_intervals(0);
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_DOUBLE_EQ(iv[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(iv[0].end, 2.0);
  EXPECT_DOUBLE_EQ(iv[1].begin, 4.0);
  EXPECT_DOUBLE_EQ(iv[1].end, 6.0);
  EXPECT_TRUE(rec.backlogged_throughout(0, 4.2, 5.8));
  EXPECT_FALSE(rec.backlogged_throughout(0, 1.5, 4.2));
}

TEST(ServiceRecorder, FinishClosesOpenIntervals) {
  ServiceRecorder rec;
  rec.on_arrival(3, 2.0);
  rec.finish(9.0);
  const auto& iv = rec.backlog_intervals(3);
  ASSERT_EQ(iv.size(), 1u);
  EXPECT_DOUBLE_EQ(iv[0].end, 9.0);
}

TEST(ServiceRecorder, ServiceWithoutArrivalThrows) {
  ServiceRecorder rec;
  EXPECT_THROW(rec.on_service(0, 1.0, 0.0, 0.0, 1.0), std::logic_error);
}

// --- empirical_fairness --------------------------------------------------------

// Hand-built record: alternating unit packets => perfectly fair.
TEST(Fairness, AlternatingServiceIsNearFair) {
  ServiceRecorder rec;
  rec.on_arrival(0, 0.0);
  rec.on_arrival(1, 0.0);
  Time t = 0.0;
  for (int i = 0; i < 10; ++i) {
    rec.on_arrival(i % 2, t);
    rec.on_service(i % 2, 1.0, 0.0, t, t + 1.0);
    t += 1.0;
  }
  rec.on_service(0, 1.0, 0.0, t, t + 1.0);
  rec.on_service(1, 1.0, 0.0, t + 1.0, t + 2.0);
  rec.finish(t + 2.0);
  const double h = empirical_fairness(rec, 0, 1.0, 1, 1.0);
  EXPECT_LE(h, 1.0 + 1e-12);  // at most one packet of imbalance
  EXPECT_GT(h, 0.0);
}

// A long one-sided run inside a co-backlogged window is found by the scan.
TEST(Fairness, DetectsOneSidedRun) {
  ServiceRecorder rec;
  rec.on_arrival(0, 0.0);
  rec.on_arrival(1, 0.0);
  Time t = 0.0;
  for (int i = 0; i < 5; ++i) {
    rec.on_arrival(0, t);
    rec.on_service(0, 1.0, 0.0, t, t + 1.0);
    t += 1.0;
  }
  rec.on_service(0, 1.0, 0.0, t, t + 1.0);
  rec.on_service(1, 1.0, 0.0, t + 1.0, t + 2.0);
  rec.finish(t + 2.0);
  const double h = empirical_fairness(rec, 0, 1.0, 1, 1.0);
  EXPECT_NEAR(h, 6.0, 1e-12);  // six flow-0 packets before flow 1 got one
}

TEST(Fairness, IgnoresServiceOutsideCoBackloggedWindows) {
  ServiceRecorder rec;
  // Flow 0 served alone (flow 1 idle): not unfair by definition.
  rec.on_arrival(0, 0.0);
  for (int i = 0; i < 4; ++i) {
    rec.on_arrival(0, static_cast<Time>(i));
    rec.on_service(0, 1.0, 0.0, i, i + 1.0);
  }
  rec.on_service(0, 1.0, 0.0, 4.0, 5.0);
  // Flow 1 becomes backlogged only at t=10, served immediately.
  rec.on_arrival(1, 10.0);
  rec.on_service(1, 1.0, 10.0, 10.0, 11.0);
  rec.finish(11.0);
  const double h = empirical_fairness(rec, 0, 1.0, 1, 1.0);
  EXPECT_DOUBLE_EQ(h, 0.0);
}

TEST(Fairness, WeightsNormalizeService) {
  ServiceRecorder rec;
  rec.on_arrival(0, 0.0);
  rec.on_arrival(1, 0.0);
  // Flow 1 has weight 3 and receives 3 packets for each of flow 0's: fair.
  Time t = 0.0;
  for (int round = 0; round < 4; ++round) {
    rec.on_arrival(0, t);
    rec.on_service(0, 1.0, 0.0, t, t + 1.0);
    t += 1.0;
    for (int k = 0; k < 3; ++k) {
      rec.on_arrival(1, t);
      rec.on_service(1, 1.0, 0.0, t, t + 1.0);
      t += 1.0;
    }
  }
  rec.on_service(0, 1.0, 0.0, t, t + 1.0);
  rec.on_service(1, 1.0, 0.0, t + 1.0, t + 2.0);
  rec.finish(t + 2.0);
  const double h = empirical_fairness(rec, 0, 1.0, 1, 3.0);
  EXPECT_LE(h, 1.0 + 1.0 / 3.0 + 1e-12);
}

TEST(Fairness, BoundsHelpers) {
  EXPECT_DOUBLE_EQ(sfq_fairness_bound(10, 5, 20, 4), 2.0 + 5.0);
  EXPECT_DOUBLE_EQ(fairness_lower_bound(10, 5, 20, 4), 3.5);
}

// --- DelayStats -----------------------------------------------------------------

TEST(DelayStats, MeanMaxPercentile) {
  DelayStats d;
  for (int i = 1; i <= 100; ++i) d.add(0, i * 0.01);
  EXPECT_EQ(d.count(0), 100u);
  EXPECT_NEAR(d.mean(0), 0.505, 1e-9);
  EXPECT_DOUBLE_EQ(d.max(0), 1.0);
  EXPECT_NEAR(d.percentile(0, 50), 0.505, 0.01);
  EXPECT_NEAR(d.percentile(0, 99), 1.0, 0.011);
}

TEST(DelayStats, AggregatesOverFlows) {
  DelayStats d;
  d.add(0, 1.0);
  d.add(1, 3.0);
  EXPECT_DOUBLE_EQ(d.mean_over({0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(d.max_over({0, 1}), 3.0);
  EXPECT_DOUBLE_EQ(d.mean_over({2}), 0.0);
}

// --- TimeSeries ------------------------------------------------------------------

TEST(TimeSeries, BucketsAndCumulative) {
  TimeSeries ts(1.0);
  ts.add(0, 0.5, 1.0);
  ts.add(0, 1.5, 1.0);
  ts.add(0, 1.7, 1.0);
  ts.add(0, 3.2, 1.0);
  const auto sums = ts.bucket_sums(0, 4.0);
  ASSERT_EQ(sums.size(), 4u);
  EXPECT_DOUBLE_EQ(sums[0], 1.0);
  EXPECT_DOUBLE_EQ(sums[1], 2.0);
  EXPECT_DOUBLE_EQ(sums[2], 0.0);
  EXPECT_DOUBLE_EQ(sums[3], 1.0);
  const auto cum = ts.cumulative(0, 4.0);
  EXPECT_DOUBLE_EQ(cum[3], 4.0);
}

TEST(TimeSeries, UnknownFlowGivesZeros) {
  TimeSeries ts(1.0);
  const auto sums = ts.bucket_sums(7, 2.0);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0], 0.0);
}

}  // namespace
}  // namespace sfq::stats
