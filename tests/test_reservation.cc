#include <gtest/gtest.h>

#include <memory>

#include "core/sfq_scheduler.h"
#include "net/network.h"
#include "net/rate_profile.h"
#include "qos/reservation.h"
#include "sim/simulator.h"
#include "traffic/leaky_bucket.h"
#include "traffic/sources.h"

namespace sfq::qos {
namespace {

PathReservations two_hop_path() {
  return PathReservations({{1e6, 0.0, 0.001}, {1e6, 5e4, 0.0}});
}

PathReservations::Request voice(Time budget = kTimeInfinity) {
  PathReservations::Request r;
  r.rate = 64e3;
  r.max_packet_bits = 1280.0;
  r.sigma = 2.0 * 1280.0;
  r.delay_budget = budget;
  r.name = "voice";
  return r;
}

TEST(Reservation, AdmitsWithinCapacity) {
  auto path = two_hop_path();
  auto d = path.admit(voice());
  EXPECT_TRUE(d.admitted);
  EXPECT_LT(d.e2e_bound, 1.0);
  EXPECT_EQ(path.active_flows(), 1u);
  EXPECT_DOUBLE_EQ(path.reserved_rate(), 64e3);
}

TEST(Reservation, RejectsRateOverCommit) {
  auto path = two_hop_path();
  PathReservations::Request big = voice();
  big.rate = 0.7e6;
  EXPECT_TRUE(path.admit(big).admitted);
  auto d = path.admit(big);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("rate"), std::string::npos);
}

TEST(Reservation, RejectsWhenOwnBudgetUnmeetable) {
  auto path = two_hop_path();
  auto d = path.admit(voice(/*budget=*/1e-6));
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("own"), std::string::npos);
}

TEST(Reservation, ProtectsStandingContracts) {
  auto path = two_hop_path();
  // First flow admitted with a budget barely above its solo bound.
  auto solo = path.admit(voice());
  ASSERT_TRUE(solo.admitted);
  path.release(solo.id);
  auto tight = voice(solo.e2e_bound + 1e-6);
  ASSERT_TRUE(path.admit(tight).admitted);

  // A jumbo-packet flow would inflate the first flow's Theorem-4 term past
  // its budget: must be rejected even though capacity is available.
  PathReservations::Request jumbo;
  jumbo.rate = 1e5;
  jumbo.max_packet_bits = 12000.0;
  jumbo.sigma = 12000.0;
  jumbo.name = "jumbo";
  auto d = path.admit(jumbo);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("contract"), std::string::npos);
}

TEST(Reservation, ReleaseRestoresHeadroom) {
  auto path = two_hop_path();
  PathReservations::Request half = voice();
  half.rate = 0.5e6;
  auto a = path.admit(half);
  auto b = path.admit(half);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  EXPECT_FALSE(path.admit(voice()).admitted);  // full
  path.release(a.id);
  EXPECT_TRUE(path.admit(voice()).admitted);
}

TEST(Reservation, BoundShrinksWhenOthersLeave) {
  auto path = two_hop_path();
  auto a = path.admit(voice());
  PathReservations::Request big = voice();
  big.max_packet_bits = 12000.0;
  big.sigma = 12000.0;
  big.name = "big";
  auto b = path.admit(big);
  ASSERT_TRUE(a.admitted && b.admitted);
  const Time with_big = path.current_bound(a.id);
  path.release(b.id);
  EXPECT_LT(path.current_bound(a.id), with_big);
}

TEST(Reservation, ValidatesInputs) {
  EXPECT_THROW(PathReservations({}), std::invalid_argument);
  auto path = two_hop_path();
  PathReservations::Request bad = voice();
  bad.rate = 0.0;
  EXPECT_FALSE(path.admit(bad).admitted);
  bad = voice();
  bad.sigma = 10.0;  // less than one packet
  EXPECT_FALSE(path.admit(bad).admitted);
  EXPECT_THROW(path.release(42), std::out_of_range);
  EXPECT_THROW(path.current_bound(42), std::out_of_range);
}

// End-to-end: the bound handed out at admission time is honoured by an
// actual simulation of the reserved path under saturating cross traffic.
TEST(Reservation, AdmittedBoundHoldsInSimulation) {
  PathReservations path({{1e6, 0.0, 0.002}, {1e6, 0.0, 0.0}});

  auto v = voice();
  auto cross_req = PathReservations::Request{
      1e6 - 64e3, 8000.0, 16000.0, kTimeInfinity, "cross"};
  auto dv = path.admit(v);
  auto dx = path.admit(cross_req);
  ASSERT_TRUE(dv.admitted && dx.admitted);

  sim::Simulator sim;
  std::vector<net::TandemNetwork::Hop> hops;
  for (int i = 0; i < 2; ++i) {
    net::TandemNetwork::Hop h;
    h.scheduler = std::make_unique<SfqScheduler>();
    h.profile = std::make_unique<net::ConstantRate>(1e6);
    h.propagation_to_next = i == 0 ? 0.002 : 0.0;
    hops.push_back(std::move(h));
  }
  net::TandemNetwork net(sim, std::move(hops));
  FlowId fv = net.add_flow(v.rate, v.max_packet_bits);
  FlowId fx = net.add_flow(cross_req.rate, cross_req.max_packet_bits);

  Time worst = 0.0;
  net.set_delivery([&](const Packet& p, Time t) {
    if (p.flow == fv) worst = std::max(worst, t - p.source_departure);
  });

  traffic::LeakyBucketShaper shaper(sim, v.sigma, v.rate, [&](Packet p) {
    p.source_departure = sim.now();
    net.inject(std::move(p));
  });
  traffic::OnOffSource voice_src(
      sim, fv, [&](Packet p) { shaper.inject(std::move(p)); },
      3.0 * v.rate, v.max_packet_bits, 0.02, 0.05, 5);
  traffic::CbrSource cross(sim, fx,
                           [&](Packet p) { net.inject(std::move(p)); },
                           1.2e6, cross_req.max_packet_bits);
  voice_src.run(0.0, 20.0);
  cross.run(0.0, 20.0);
  sim.run_until(20.0);
  sim.run();

  EXPECT_LE(worst, path.current_bound(dv.id) + 1e-9);
}

}  // namespace
}  // namespace sfq::qos
