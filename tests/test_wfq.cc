#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/sfq_scheduler.h"
#include "harness.h"
#include "net/rate_profile.h"
#include "sched/gps_virtual_time.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "sched/wfq_scheduler.h"
#include "stats/fairness.h"

namespace sfq {
namespace {

// --- GPS fluid virtual time (eq. 3) ---------------------------------------

TEST(GpsVirtualTime, SingleFlowSlopeIsCapacityOverWeight) {
  GpsVirtualTime gps(10.0);
  gps.add_flow(2.0);
  auto tags = gps.on_arrival(0, 100.0, 0.0);  // F = 50 in virtual time
  EXPECT_DOUBLE_EQ(tags.start, 0.0);
  EXPECT_DOUBLE_EQ(tags.finish, 50.0);
  // dv/dt = C / w = 5 while the flow is fluid-backlogged.
  EXPECT_DOUBLE_EQ(gps.advance(4.0), 20.0);
  // Fluid departure at v=50 (t=10); afterwards v freezes.
  EXPECT_DOUBLE_EQ(gps.advance(12.0), 50.0);
}

TEST(GpsVirtualTime, SlopeChangesAtFluidDepartures) {
  GpsVirtualTime gps(6.0);
  gps.add_flow(1.0);
  gps.add_flow(2.0);
  gps.on_arrival(0, 6.0, 0.0);  // flow0: F = 6
  gps.on_arrival(1, 24.0, 0.0); // flow1: F = 12
  // Both backlogged: dv/dt = 6/3 = 2 until v=6 (t=3, flow0 fluid-departs),
  // then dv/dt = 6/2 = 3 until v=12 (t=5).
  EXPECT_DOUBLE_EQ(gps.advance(2.0), 4.0);
  EXPECT_DOUBLE_EQ(gps.advance(3.0), 6.0);
  EXPECT_DOUBLE_EQ(gps.advance(4.0), 9.0);
  EXPECT_DOUBLE_EQ(gps.advance(5.5), 12.0);
}

TEST(GpsVirtualTime, ArrivalDuringIdleStartsAtFrozenV) {
  GpsVirtualTime gps(1.0);
  gps.add_flow(1.0);
  gps.on_arrival(0, 2.0, 0.0);       // F=2, departs fluid at t=2
  EXPECT_DOUBLE_EQ(gps.advance(5.0), 2.0);
  auto tags = gps.on_arrival(0, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(tags.start, 2.0);  // max(v, last_finish) = 2
  EXPECT_DOUBLE_EQ(tags.finish, 3.0);
}

TEST(GpsVirtualTime, BackloggedFlowChainsFinishTags) {
  GpsVirtualTime gps(1.0);
  gps.add_flow(1.0);
  gps.add_flow(1.0);
  gps.on_arrival(0, 4.0, 0.0);
  auto t1 = gps.on_arrival(0, 4.0, 0.0);
  EXPECT_DOUBLE_EQ(t1.start, 4.0);
  EXPECT_DOUBLE_EQ(t1.finish, 8.0);
}

// --- WFQ packet ordering ---------------------------------------------------

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

TEST(Wfq, ServesInFinishTagOrder) {
  WfqScheduler s(1.0);
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(1.0);
  s.enqueue(mk(a, 1, 4.0), 0.0);  // F=4
  s.enqueue(mk(b, 1, 2.0), 0.0);  // F=2
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, b);
}

TEST(Fqs, ServesInStartTagOrder) {
  FqsScheduler s(1.0);
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(1.0);
  s.enqueue(mk(a, 1, 4.0), 0.0);  // S=0 F=4
  s.enqueue(mk(a, 2, 1.0), 0.0);  // S=4
  s.enqueue(mk(b, 1, 2.0), 0.0);  // S=0 F=2
  auto p1 = s.dequeue(0.0);
  auto p2 = s.dequeue(0.0);
  auto p3 = s.dequeue(0.0);
  ASSERT_TRUE(p1 && p2 && p3);
  EXPECT_EQ(p1->flow, a);  // S=0, FIFO tie-break by arrival
  EXPECT_EQ(p2->flow, b);  // S=0
  EXPECT_EQ(p3->flow, a);  // S=4
}

// --- Example 1: WFQ's fairness is >= 2x the lower bound --------------------

TEST(WfqUnfairness, ExampleOneFairnessAtLeastTwiceLowerBound) {
  // r_f = r_m = 1, l^max = 1 => c = 1. Flow f sends two unit packets at 0;
  // flow m sends {1, 0.5, 0.499} at 0 (the third infinitesimally short of
  // 0.5 forces the adversarial tie-break of the example deterministically).
  sim::Simulator sim;
  WfqScheduler sched(1.0);
  FlowId f = sched.add_flow(1.0, 1.0);
  FlowId m = sched.add_flow(1.0, 1.0);
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(1.0));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);

  sim.at(0.0, [&] {
    server.inject(mk(f, 1, 1.0));
    server.inject(mk(f, 2, 1.0));
    server.inject(mk(m, 1, 1.0));
    server.inject(mk(m, 2, 0.5));
    server.inject(mk(m, 3, 0.499));
  });
  sim.run();
  rec.finish(sim.now());

  // Service order must be f1, m1, m2, m3, f2.
  const auto& tx = rec.transmissions();
  ASSERT_EQ(tx.size(), 5u);
  EXPECT_EQ(tx[0].flow, f);
  EXPECT_EQ(tx[1].flow, m);
  EXPECT_EQ(tx[2].flow, m);
  EXPECT_EQ(tx[3].flow, m);
  EXPECT_EQ(tx[4].flow, f);

  const double h = stats::empirical_fairness(rec, f, 1.0, m, 1.0);
  // H(f,m) >= l_f/r_f + l_m/r_m (~2), twice the lower bound (~1).
  EXPECT_GE(h, 1.99);
  const double lower = stats::fairness_lower_bound(1.0, 1.0, 1.0, 1.0);
  EXPECT_GE(h, 2.0 * lower - 0.01);
}

// --- Example 2: WFQ starves a late flow on a variable-rate server ----------

TEST(WfqUnfairness, ExampleTwoVariableRateStarvation) {
  // WFQ emulates C = 10 pkt/s (unit packets), but the real link runs at
  // 1 pkt/s during [0,1) and 10 pkt/s during [1,2). Flow f dumps C+1 packets
  // at t=0; flow m becomes backlogged at t=1.
  const double C = 10.0;
  sim::Simulator sim;
  WfqScheduler sched(C);
  FlowId f = sched.add_flow(1.0, 1.0);
  FlowId m = sched.add_flow(1.0, 1.0);
  auto profile = std::make_unique<net::PiecewiseConstantRate>(
      std::vector<net::PiecewiseConstantRate::Segment>{{0.0, 1.0}, {1.0, C}});
  net::ScheduledServer server(sim, sched, std::move(profile));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);

  sim.at(0.0, [&] {
    for (int j = 1; j <= static_cast<int>(C) + 1; ++j)
      server.inject(mk(f, j, 1.0));
  });
  sim.at(1.0, [&] {
    for (int j = 1; j <= static_cast<int>(C); ++j) server.inject(mk(m, j, 1.0));
  });
  sim.run_until(2.0);
  rec.finish(2.0);

  const double wf = rec.served_bits(f, 1.0, 2.0);
  const double wm = rec.served_bits(m, 1.0, 2.0);
  // Fair shares would be C/2 = 5 each; WFQ gives m at most ~1.
  EXPECT_GE(wf, C - 2.0);
  EXPECT_LE(wm, 1.0);
}

TEST(WfqUnfairness, SfqSplitsExampleTwoEvenly) {
  // Identical workload under SFQ: both flows get about C/2 during [1,2).
  const double C = 10.0;
  sim::Simulator sim;
  SfqScheduler sched;
  FlowId f = sched.add_flow(1.0, 1.0);
  FlowId m = sched.add_flow(1.0, 1.0);
  auto profile = std::make_unique<net::PiecewiseConstantRate>(
      std::vector<net::PiecewiseConstantRate::Segment>{{0.0, 1.0}, {1.0, C}});
  net::ScheduledServer server(sim, sched, std::move(profile));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);

  sim.at(0.0, [&] {
    for (int j = 1; j <= static_cast<int>(C) + 1; ++j)
      server.inject(mk(f, j, 1.0));
  });
  sim.at(1.0, [&] {
    for (int j = 1; j <= static_cast<int>(C); ++j) server.inject(mk(m, j, 1.0));
  });
  sim.run_until(2.0);
  rec.finish(2.0);

  const double wf = rec.served_bits(f, 1.0, 2.0);
  const double wm = rec.served_bits(m, 1.0, 2.0);
  EXPECT_NEAR(wf, C / 2.0, 1.5);
  EXPECT_NEAR(wm, C / 2.0, 1.5);
}

// --- WFQ is fair (within its own bound) on the server it was built for -----

TEST(Wfq, FairOnConstantRateServer) {
  const double C = 1000.0;
  WfqScheduler s(C);
  const double w0 = 200.0, w1 = 800.0, l0 = 40.0, l1 = 80.0;
  auto r = test::run_workload(
      s, std::make_unique<net::ConstantRate>(C),
      {{w0, l0, test::Kind::kGreedy}, {w1, l1, test::Kind::kGreedy}}, 5.0);
  const double h =
      stats::empirical_fairness(r->recorder, r->ids[0], w0, r->ids[1], w1);
  // Example 1 shows H_WFQ >= lf/rf + lm/rm in the worst case; greedy CBR
  // traffic stays within that envelope.
  EXPECT_LE(h, l0 / w0 + l1 / w1 + 1e-9);
}

TEST(Fqs, FairOnConstantRateServer) {
  const double C = 1000.0;
  FqsScheduler s(C);
  const double w0 = 300.0, w1 = 700.0, l0 = 56.0, l1 = 64.0;
  auto r = test::run_workload(
      s, std::make_unique<net::ConstantRate>(C),
      {{w0, l0, test::Kind::kGreedy}, {w1, l1, test::Kind::kGreedy}}, 5.0);
  const double h =
      stats::empirical_fairness(r->recorder, r->ids[0], w0, r->ids[1], w1);
  EXPECT_LE(h, l0 / w0 + l1 / w1 + 1e-9);
}


// WFQ's delay guarantee (§2.3): departure <= EAT + l/r + l_max/C. Measured on
// the low-rate-flow-among-elephants workload that maximizes the l/r term.
TEST(Wfq, DelayBoundEatPlusLOverR) {
  const double C = 1e6, low = 10e3, len = 1600.0;
  const int n_others = 9;
  const double other = (C - low) / n_others;

  sim::Simulator sim;
  WfqScheduler sched(C);
  FlowId tagged = sched.add_flow(low, len);
  for (int i = 0; i < n_others; ++i) sched.add_flow(other, len);
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(C));
  Time worst = 0.0;
  std::vector<Time> eats;
  qos::EatTracker eat;
  server.set_departure([&](const Packet& p, Time t) {
    if (p.flow == tagged && t - eats[p.seq - 1] > worst)
      worst = t - eats[p.seq - 1];
  });
  auto emit_tag = [&](Packet p) {
    eats.push_back(eat.on_arrival(sim.now(), p.length_bits, low));
    server.inject(std::move(p));
  };
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  std::vector<std::unique_ptr<traffic::Source>> src;
  for (int i = 0; i < n_others; ++i) {
    src.push_back(std::make_unique<traffic::CbrSource>(
        sim, static_cast<FlowId>(1 + i), emit, 1.25 * other, len));
    src.back()->run(0.0, 4.0);
  }
  traffic::CbrSource tag(sim, tagged, emit_tag, low, len);
  tag.run(0.0, 4.0);
  sim.run_until(4.0);
  sim.run();

  const Time bound = qos::wfq_delay_term(C, len, len, low);
  EXPECT_LE(worst, bound + 1e-9);
  // And the bound is nearly achieved (the l/r coupling is real).
  EXPECT_GT(worst, 0.9 * (len / low));
}

}  // namespace
}  // namespace sfq
