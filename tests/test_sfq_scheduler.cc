#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/sfq_scheduler.h"
#include "harness.h"
#include "net/rate_profile.h"
#include "qos/bounds.h"
#include "stats/fairness.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits, double rate = 0.0) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  p.rate = rate;
  return p;
}

// --- Tag arithmetic (eqs. 4-5) ------------------------------------------

TEST(SfqTags, StartAndFinishTagsFollowEq4And5) {
  SfqScheduler s;
  FlowId f0 = s.add_flow(1.0);
  FlowId f1 = s.add_flow(2.0);

  s.enqueue(mk(f0, 1, 2.0), 0.0);  // S=0, F=2
  s.enqueue(mk(f0, 2, 2.0), 0.0);  // S=2, F=4
  s.enqueue(mk(f1, 1, 2.0), 0.0);  // S=0, F=1
  s.enqueue(mk(f1, 2, 2.0), 0.0);  // S=1, F=2

  EXPECT_DOUBLE_EQ(s.last_finish_tag(f0), 4.0);
  EXPECT_DOUBLE_EQ(s.last_finish_tag(f1), 2.0);

  // Service order by start tag, FIFO on ties: f0p1(S0), f1p1(S0), f1p2(S1),
  // f0p2(S2).
  auto p1 = s.dequeue(0.0);
  ASSERT_TRUE(p1);
  EXPECT_EQ(p1->flow, f0);
  EXPECT_DOUBLE_EQ(p1->start_tag, 0.0);
  EXPECT_DOUBLE_EQ(p1->finish_tag, 2.0);
  EXPECT_DOUBLE_EQ(s.vtime(), 0.0);
  s.on_transmit_complete(*p1, 1.0);

  auto p2 = s.dequeue(1.0);
  ASSERT_TRUE(p2);
  EXPECT_EQ(p2->flow, f1);
  EXPECT_DOUBLE_EQ(p2->start_tag, 0.0);
  s.on_transmit_complete(*p2, 2.0);

  auto p3 = s.dequeue(2.0);
  ASSERT_TRUE(p3);
  EXPECT_EQ(p3->flow, f1);
  EXPECT_DOUBLE_EQ(p3->start_tag, 1.0);
  EXPECT_DOUBLE_EQ(s.vtime(), 1.0);
  s.on_transmit_complete(*p3, 3.0);

  auto p4 = s.dequeue(3.0);
  ASSERT_TRUE(p4);
  EXPECT_EQ(p4->flow, f0);
  EXPECT_DOUBLE_EQ(p4->start_tag, 2.0);
  s.on_transmit_complete(*p4, 4.0);

  // Busy period over: v jumps to the max finish tag serviced (= 4).
  EXPECT_DOUBLE_EQ(s.vtime(), 4.0);
  EXPECT_TRUE(s.empty());
}

TEST(SfqTags, ArrivalToIdleFlowUsesCurrentVirtualTime) {
  SfqScheduler s;
  FlowId f0 = s.add_flow(1.0);
  FlowId f1 = s.add_flow(1.0);

  // f0 builds virtual time while f1 idles.
  for (int j = 1; j <= 4; ++j) s.enqueue(mk(f0, j, 1.0), 0.0);
  for (int j = 0; j < 3; ++j) {
    auto p = s.dequeue(0.0);
    ASSERT_TRUE(p);
    s.on_transmit_complete(*p, 0.0);
  }
  EXPECT_DOUBLE_EQ(s.vtime(), 2.0);  // start tag of 3rd packet

  // f1's first packet starts at v, not at 0: no banked credit from idling.
  s.enqueue(mk(f1, 1, 1.0), 0.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, f1);
  EXPECT_DOUBLE_EQ(p->start_tag, 2.0);
}

TEST(SfqTags, BusyPeriodEndJumpsToMaxFinish) {
  SfqScheduler s;
  FlowId f0 = s.add_flow(1.0);
  s.enqueue(mk(f0, 1, 5.0), 0.0);  // S=0 F=5
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(s.vtime(), 0.0);
  s.on_transmit_complete(*p, 1.0);
  EXPECT_DOUBLE_EQ(s.vtime(), 5.0);

  // Next busy period: a returning flow cannot reuse its old start tags.
  s.enqueue(mk(f0, 2, 1.0), 2.0);
  auto q = s.dequeue(2.0);
  ASSERT_TRUE(q);
  EXPECT_DOUBLE_EQ(q->start_tag, 5.0);
}

TEST(SfqTags, GeneralizedPerPacketRates) {
  // Eq. 36: F = S + l / r_f^j when the packet carries its own rate.
  SfqScheduler s;
  FlowId f = s.add_flow(1.0);
  s.enqueue(mk(f, 1, 10.0, /*rate=*/5.0), 0.0);  // S=0, F=2
  s.enqueue(mk(f, 2, 10.0, /*rate=*/2.0), 0.0);  // S=2, F=7
  EXPECT_DOUBLE_EQ(s.last_finish_tag(f), 7.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->finish_tag, 2.0);
}

TEST(SfqTags, UnknownFlowIsCountedDrop) {
  SfqScheduler s;
  s.enqueue(mk(99, 1, 1.0), 0.0);  // never registered: dropped, not thrown
  EXPECT_EQ(s.unknown_flow_drops(), 1u);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.dequeue(0.0));
}

TEST(SfqTags, VirtualTimeIsMonotone) {
  SfqScheduler s;
  FlowId f0 = s.add_flow(1.0);
  FlowId f1 = s.add_flow(3.0);
  double last_v = 0.0;
  uint64_t seq0 = 0, seq1 = 0;
  for (int round = 0; round < 50; ++round) {
    s.enqueue(mk(f0, ++seq0, 1.0 + round % 3), 0.0);
    s.enqueue(mk(f1, ++seq1, 2.0), 0.0);
    if (round % 2 == 0) {
      auto p = s.dequeue(0.0);
      ASSERT_TRUE(p);
      EXPECT_GE(s.vtime(), last_v);
      last_v = s.vtime();
      s.on_transmit_complete(*p, 0.0);
    }
  }
  while (auto p = s.dequeue(0.0)) {
    EXPECT_GE(s.vtime(), last_v);
    last_v = s.vtime();
    s.on_transmit_complete(*p, 0.0);
  }
}

// --- Tie-break policies ---------------------------------------------------

TEST(SfqTieBreak, LowWeightFirstFavorsInteractiveFlows) {
  SfqScheduler s(TieBreak::kLowWeightFirst);
  FlowId heavy = s.add_flow(10.0);
  FlowId light = s.add_flow(1.0);
  s.enqueue(mk(heavy, 1, 1.0), 0.0);  // S=0
  s.enqueue(mk(light, 1, 1.0), 0.0);  // S=0
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, light);
}

TEST(SfqTieBreak, HighWeightFirst) {
  SfqScheduler s(TieBreak::kHighWeightFirst);
  FlowId heavy = s.add_flow(10.0);
  FlowId light = s.add_flow(1.0);
  s.enqueue(mk(light, 1, 1.0), 0.0);
  s.enqueue(mk(heavy, 1, 1.0), 0.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, heavy);
}

TEST(SfqTieBreak, FifoBreaksByArrival) {
  SfqScheduler s(TieBreak::kFifo);
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(1.0);
  s.enqueue(mk(b, 1, 1.0), 0.0);
  s.enqueue(mk(a, 1, 1.0), 0.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, b);
}

// --- Lemmas 1 & 2 (service vs virtual time) -------------------------------

TEST(SfqLemmas, ServiceBoundsInVirtualTime) {
  // Run a backlogged two-flow system and check
  //   r_f (v2 - v1) - l^max <= W_f <= r_f (v2 - v1) + l^max
  // across the busy period, sampling v at each dequeue.
  SfqScheduler s;
  const double w0 = 1.0, w1 = 3.0, len = 2.0;
  FlowId f0 = s.add_flow(w0);
  FlowId f1 = s.add_flow(w1);
  for (int j = 1; j <= 60; ++j) {
    s.enqueue(mk(f0, j, len), 0.0);
    s.enqueue(mk(f1, j, len), 0.0);
  }
  const double v1 = s.vtime();
  double served0 = 0.0, served1 = 0.0;
  for (int k = 0; k < 60; ++k) {
    auto p = s.dequeue(0.0);
    ASSERT_TRUE(p);
    const double v2 = s.vtime();
    // Check the bounds *before* counting this packet (W counts completed
    // service).
    EXPECT_GE(served0, w0 * (v2 - v1) - len - 1e-9);
    EXPECT_LE(served0, w0 * (v2 - v1) + len + 1e-9);
    EXPECT_GE(served1, w1 * (v2 - v1) - len - 1e-9);
    EXPECT_LE(served1, w1 * (v2 - v1) + len + 1e-9);
    (p->flow == f0 ? served0 : served1) += p->length_bits;
    s.on_transmit_complete(*p, 0.0);
  }
}

// --- Theorem 1: fairness on servers of any rate profile -------------------

struct FairnessCase {
  const char* name;
  double w0, w1;
  double l0, l1;
  std::unique_ptr<net::RateProfile> (*profile)();
};

std::unique_ptr<net::RateProfile> constant_profile() {
  return std::make_unique<net::ConstantRate>(1000.0);
}
std::unique_ptr<net::RateProfile> fc_profile() {
  return std::make_unique<net::FcOnOffRate>(1000.0, 400.0, 0.5);
}
std::unique_ptr<net::RateProfile> ebf_profile() {
  net::EbfRandomRate::Params p;
  p.average = 1000.0;
  p.on_rate = 2500.0;
  p.mean_pause = 0.02;
  p.mean_run = 0.03;
  p.seed = 99;
  return std::make_unique<net::EbfRandomRate>(p);
}
std::unique_ptr<net::RateProfile> step_profile() {
  // Capacity drops to 20% mid-run, then recovers — Example-2 style.
  return std::make_unique<net::PiecewiseConstantRate>(
      std::vector<net::PiecewiseConstantRate::Segment>{
          {0.0, 1000.0}, {2.0, 200.0}, {5.0, 1500.0}});
}

class SfqFairnessOverServers
    : public ::testing::TestWithParam<
          std::unique_ptr<net::RateProfile> (*)()> {};

TEST_P(SfqFairnessOverServers, TheoremOneHoldsOnAnyServer) {
  SfqScheduler s;
  const double w0 = 100.0, w1 = 300.0;
  const double l0 = 40.0, l1 = 64.0;
  auto r = test::run_workload(
      s, GetParam()(),
      {{w0, l0, test::Kind::kGreedy}, {w1, l1, test::Kind::kGreedy}}, 8.0);

  const double h = stats::empirical_fairness(r->recorder, r->ids[0], w0,
                                             r->ids[1], w1);
  const double bound = qos::sfq_fairness_bound(l0, w0, l1, w1);
  EXPECT_LE(h, bound + 1e-9);
  // The flows really competed: both served substantially.
  EXPECT_GT(r->recorder.served_bits(r->ids[0]), 0.0);
  EXPECT_GT(r->recorder.served_bits(r->ids[1]), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Profiles, SfqFairnessOverServers,
                         ::testing::Values(&constant_profile, &fc_profile,
                                           &ebf_profile, &step_profile));

// Randomized many-flow fairness sweep.
class SfqFairnessRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SfqFairnessRandom, AllPairsWithinTheoremOne) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> wdist(10.0, 500.0);
  std::uniform_real_distribution<double> ldist(16.0, 96.0);
  const int n = 3 + static_cast<int>(rng() % 5);

  SfqScheduler s;
  std::vector<test::FlowCfg> cfgs;
  for (int i = 0; i < n; ++i)
    cfgs.push_back(
        {wdist(rng), ldist(rng), test::Kind::kGreedy});
  auto r = test::run_workload(s, std::make_unique<net::ConstantRate>(2000.0),
                              cfgs, 6.0, GetParam());

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double h = stats::empirical_fairness(
          r->recorder, r->ids[i], cfgs[i].weight, r->ids[j], cfgs[j].weight);
      const double bound = qos::sfq_fairness_bound(
          cfgs[i].packet_bits, cfgs[i].weight, cfgs[j].packet_bits,
          cfgs[j].weight);
      EXPECT_LE(h, bound + 1e-9)
          << "pair (" << i << "," << j << ") seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SfqFairnessRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Theorems 2 & 4 on an FC server ---------------------------------------

TEST(SfqGuarantees, TheoremTwoThroughputOnFcServer) {
  const double C = 1000.0, delta = 300.0;
  SfqScheduler s;
  const double w0 = 400.0, w1 = 600.0, len = 50.0;
  auto r = test::run_workload(
      s, std::make_unique<net::FcOnOffRate>(C, delta, 0.5),
      {{w0, len, test::Kind::kGreedy}, {w1, len, test::Kind::kGreedy}}, 10.0);

  const double sum_lmax = len + len;
  // Check over a grid of interval lengths within the backlogged window.
  for (double t2 = 0.5; t2 <= 9.5; t2 += 0.5) {
    ASSERT_TRUE(r->recorder.backlogged_throughout(r->ids[0], 0.0, t2));
    const double w = r->recorder.served_bits(r->ids[0], 0.0, t2);
    const double bound = qos::sfq_fc_throughput_lower_bound(
        {C, delta}, w0, sum_lmax, len, 0.0, t2);
    EXPECT_GE(w, bound - 1e-6) << "t2=" << t2;
  }
}

TEST(SfqGuarantees, TheoremFourDelayOnFcServer) {
  const double C = 1000.0, delta = 200.0;
  SfqScheduler s;
  const double len = 50.0;
  // sum of weights <= C as the theorem requires.
  std::vector<test::FlowCfg> cfgs = {
      {300.0, len, test::Kind::kPoisson, 250.0},
      {400.0, len, test::Kind::kPoisson, 350.0},
      {300.0, len, test::Kind::kGreedy},
  };
  auto r = test::run_workload(
      s, std::make_unique<net::FcOnOffRate>(C, delta, 0.5), cfgs, 10.0, 17);

  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const double sum_other = 2.0 * len;  // two other flows, same l^max
    const Time beta =
        qos::sfq_fc_delay_term({C, delta}, sum_other, len);
    EXPECT_LE(r->max_eat_lateness[i], beta + 1e-9) << "flow " << i;
  }
}

}  // namespace
}  // namespace sfq
