// §2.4 interoperability: Corollary 1 only requires each hop to satisfy the
// guarantee template (62); SFQ, Virtual Clock and SCFQ hops can therefore be
// composed on one path. This test builds a mixed tandem, uses each
// discipline's own beta term, and checks every delivered packet against the
// composed deterministic bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/sfq_scheduler.h"
#include "net/network.h"
#include "net/rate_profile.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "qos/end_to_end.h"
#include "sched/scfq_scheduler.h"
#include "sched/virtual_clock.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

namespace sfq {
namespace {

TEST(InteropE2E, MixedSfqVcScfqPathMeetsComposedBound) {
  const double C = 1e6, len = 1000.0;
  const Time prop = 0.001;
  const double rates[3] = {0.25 * C, 0.35 * C, 0.40 * C};

  sim::Simulator sim;
  std::vector<net::TandemNetwork::Hop> hops;
  auto add_hop = [&](std::unique_ptr<Scheduler> s, Time p) {
    net::TandemNetwork::Hop h;
    h.scheduler = std::move(s);
    h.profile = std::make_unique<net::ConstantRate>(C);
    h.propagation_to_next = p;
    hops.push_back(std::move(h));
  };
  add_hop(std::make_unique<SfqScheduler>(), prop);
  add_hop(std::make_unique<VirtualClockScheduler>(), prop);
  add_hop(std::make_unique<ScfqScheduler>(), 0.0);
  net::TandemNetwork net(sim, std::move(hops));
  std::vector<FlowId> ids;
  for (double r : rates) ids.push_back(net.add_flow(r, len));

  // Per-hop beta for the tagged flow (flow 0):
  //   SFQ  (Thm 4): sum_{n!=f} l/C + l/C
  //   VC   (GR):    l/r + l_max/C          (Virtual Clock's GR guarantee)
  //   SCFQ (eq.56): sum_{n!=f} l/C + l/r
  const double sum_other = 2.0 * len;
  std::vector<qos::HopGuarantee> hg;
  hg.push_back(qos::sfq_fc_hop({C, 0.0}, sum_other, len, prop));
  hg.push_back(
      {len / rates[0] + len / C, 0.0, 0.0, prop});
  hg.push_back({qos::scfq_delay_term(C, sum_other, len, rates[0]), 0.0, 0.0,
                0.0});
  const auto g = qos::compose(hg);

  std::vector<Time> eat1;
  Time worst = -kTimeInfinity;
  uint64_t delivered = 0;
  net.set_delivery([&](const Packet& p, Time t) {
    if (p.flow != ids[0]) return;
    worst = std::max(worst, t - eat1[p.seq - 1]);
    ++delivered;
  });
  qos::EatTracker eat;
  traffic::PoissonSource tagged(
      sim, ids[0],
      [&](Packet p) {
        eat1.push_back(eat.on_arrival(sim.now(), p.length_bits, rates[0]));
        net.inject(std::move(p));
      },
      0.22 * C, len, 7);
  tagged.run(0.0, 10.0);

  auto emit = [&](Packet p) { net.inject(std::move(p)); };
  traffic::CbrSource x1(sim, ids[1], emit, 0.7 * C, len);
  traffic::OnOffSource x2(sim, ids[2], emit, 0.8 * C, len, 0.02, 0.03, 8);
  x1.run(0.0, 10.0);
  x2.run(0.0, 10.0);

  sim.run_until(10.0);
  sim.run();

  EXPECT_GT(delivered, 400u);
  EXPECT_LE(worst, g.theta + 1e-9);
}

// The reverse sanity: the bound is not vacuous — it is within a small factor
// of what the worst packet actually experienced.
TEST(InteropE2E, ComposedBoundIsNotAbsurdlyLoose) {
  const double C = 1e6, len = 1000.0;
  const double r = 0.25 * C;
  const double sum_other = 2.0 * len;
  std::vector<qos::HopGuarantee> hg;
  hg.push_back(qos::sfq_fc_hop({C, 0.0}, sum_other, len, 0.001));
  hg.push_back({len / r + len / C, 0.0, 0.0, 0.001});
  hg.push_back({qos::scfq_delay_term(C, sum_other, len, r), 0.0, 0.0, 0.0});
  const auto g = qos::compose(hg);
  // 3 hops with ~ms-scale terms: the bound stays in the low tens of ms.
  EXPECT_LT(g.theta, 0.05);
  EXPECT_GT(g.theta, 0.005);
}

}  // namespace
}  // namespace sfq
