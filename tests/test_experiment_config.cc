#include <gtest/gtest.h>

#include <sstream>

#include "config/experiment.h"

namespace sfq::config {
namespace {

// --- Unit parsing -----------------------------------------------------------

TEST(Units, Rates) {
  EXPECT_DOUBLE_EQ(parse_rate("1000"), 1000.0);
  EXPECT_DOUBLE_EQ(parse_rate("64Kbps"), 64e3);
  EXPECT_DOUBLE_EQ(parse_rate("2.5Mbps"), 2.5e6);
  EXPECT_DOUBLE_EQ(parse_rate("1Gbps"), 1e9);
  EXPECT_DOUBLE_EQ(parse_rate("100bps"), 100.0);
  EXPECT_THROW(parse_rate("10MBps"), std::invalid_argument);
  EXPECT_THROW(parse_rate("fast"), std::invalid_argument);
}

TEST(Units, Sizes) {
  EXPECT_DOUBLE_EQ(parse_size("100"), 100.0);
  EXPECT_DOUBLE_EQ(parse_size("100b"), 100.0);
  EXPECT_DOUBLE_EQ(parse_size("200B"), 1600.0);
  EXPECT_DOUBLE_EQ(parse_size("1KB"), 8000.0);
  EXPECT_DOUBLE_EQ(parse_size("1Kb"), 1000.0);
  EXPECT_DOUBLE_EQ(parse_size("2MB"), 16e6);
  EXPECT_THROW(parse_size("1GB"), std::invalid_argument);
}

TEST(Units, Times) {
  EXPECT_DOUBLE_EQ(parse_time("2"), 2.0);
  EXPECT_DOUBLE_EQ(parse_time("2s"), 2.0);
  EXPECT_DOUBLE_EQ(parse_time("500ms"), 0.5);
  EXPECT_DOUBLE_EQ(parse_time("250us"), 250e-6);
  EXPECT_THROW(parse_time("1h"), std::invalid_argument);
}

TEST(Units, ScientificNotation) {
  EXPECT_DOUBLE_EQ(parse_rate("1e6"), 1e6);
  EXPECT_DOUBLE_EQ(parse_size("1.5e3B"), 12000.0);
}

// --- Config parsing -----------------------------------------------------------

TEST(ExperimentSpecParse, FullConfig) {
  std::istringstream in(R"(
# a comment
scheduler SCFQ
link rate=10Mbps delta=20Kb buffer=64
duration 5s
flow name=voice kind=cbr rate=64Kbps packet=160B
flow name=web kind=poisson rate=2Mbps packet=1000B weight=1Mbps seed=7
flow kind=greedy packet=1500B weight=4Mbps start=2s stop=4s
)");
  const auto spec = ExperimentSpec::parse(in);
  EXPECT_EQ(spec.scheduler, "SCFQ");
  ASSERT_EQ(spec.hops.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.hops[0].rate, 10e6);
  EXPECT_DOUBLE_EQ(spec.hops[0].delta, 20e3);
  EXPECT_EQ(spec.hops[0].buffer_packets, 64u);
  EXPECT_DOUBLE_EQ(spec.duration, 5.0);
  ASSERT_EQ(spec.flows.size(), 3u);

  EXPECT_EQ(spec.flows[0].name, "voice");
  EXPECT_DOUBLE_EQ(spec.flows[0].rate, 64e3);
  EXPECT_DOUBLE_EQ(spec.flows[0].weight, 64e3);  // defaults to rate
  EXPECT_DOUBLE_EQ(spec.flows[0].packet, 1280.0);

  EXPECT_EQ(spec.flows[1].seed, 7u);
  EXPECT_DOUBLE_EQ(spec.flows[1].weight, 1e6);  // explicit

  EXPECT_EQ(spec.flows[2].name, "flow2");  // auto-named
  EXPECT_EQ(spec.flows[2].kind, "greedy");
  EXPECT_DOUBLE_EQ(spec.flows[2].start, 2.0);
  EXPECT_DOUBLE_EQ(spec.flows[2].stop, 4.0);
}

TEST(ExperimentSpecParse, Rejections) {
  auto parse = [](const char* text) {
    std::istringstream in(text);
    return ExperimentSpec::parse(in);
  };
  EXPECT_THROW(parse("flow kind=cbr rate=1Mbps packet=100B\nbogus x"),
               std::invalid_argument);
  EXPECT_THROW(parse("flow kind=warp rate=1Mbps packet=100B"),
               std::invalid_argument);
  EXPECT_THROW(parse("flow kind=cbr packet=100B"), std::invalid_argument);
  EXPECT_THROW(parse("flow kind=cbr rate=1Mbps"), std::invalid_argument);
  EXPECT_THROW(parse("flow notkeyvalue"), std::invalid_argument);
  EXPECT_THROW(parse("link speed=1Mbps\nflow kind=cbr rate=1 packet=1"),
               std::invalid_argument);
  EXPECT_THROW(parse(""), std::invalid_argument);  // no flows
  EXPECT_THROW(ExperimentSpec::parse_file("/nonexistent/file.conf"),
               std::runtime_error);
}

// --- Running ---------------------------------------------------------------------

TEST(ExperimentRun, WeightedSharesUnderOverload) {
  std::istringstream in(R"(
scheduler SFQ
link rate=1Mbps
duration 5s
flow name=a kind=greedy packet=500B weight=250Kbps
flow name=b kind=greedy packet=500B weight=750Kbps
)");
  const auto result = run_experiment(ExperimentSpec::parse(in));
  ASSERT_EQ(result.flows.size(), 2u);
  EXPECT_NEAR(result.flows[0].throughput, 250e3, 15e3);
  EXPECT_NEAR(result.flows[1].throughput, 750e3, 15e3);
  EXPECT_LE(result.worst_fairness_ratio, 1.0 + 1e-9);
  EXPECT_EQ(result.drops, 0u);
}

TEST(ExperimentRun, BufferLimitCausesDrops) {
  std::istringstream in(R"(
scheduler FIFO
link rate=100Kbps buffer=4
duration 3s
flow name=burst kind=greedy packet=1000B weight=400Kbps
)");
  const auto result = run_experiment(ExperimentSpec::parse(in));
  EXPECT_GT(result.drops, 0u);
}

TEST(ExperimentRun, EverySchedulerRunsTheSameConfig) {
  for (const char* sched : {"SFQ", "SCFQ", "WFQ", "FQS", "DRR", "WRR", "VC",
                            "EDD", "FIFO", "FairAirport", "HSFQ"}) {
    std::istringstream in(std::string("scheduler ") + sched + R"(
link rate=1Mbps
duration 2s
flow name=a kind=poisson rate=300Kbps packet=500B
flow name=b kind=cbr rate=300Kbps packet=250B
)");
    const auto result = run_experiment(ExperimentSpec::parse(in));
    ASSERT_EQ(result.flows.size(), 2u) << sched;
    // Uncongested: everything offered is delivered.
    EXPECT_NEAR(result.flows[1].throughput, 300e3, 10e3) << sched;
    EXPECT_GT(result.flows[0].packets_delivered, 100u) << sched;
  }
}


TEST(ExperimentSpecParse, MultiHopPath) {
  std::istringstream in(R"(
scheduler SFQ
link rate=10Mbps prop=2ms
link rate=5Mbps prop=3ms
link rate=10Mbps
duration 2s
flow name=a kind=cbr rate=1Mbps packet=1000B
)");
  const auto spec = ExperimentSpec::parse(in);
  ASSERT_EQ(spec.hops.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.hops[0].propagation, 0.002);
  EXPECT_DOUBLE_EQ(spec.hops[1].rate, 5e6);
}

TEST(ExperimentRun, MultiHopEndToEndDelayIncludesPropagation) {
  std::istringstream in(R"(
scheduler SFQ
link rate=1Mbps prop=10ms
link rate=1Mbps
duration 3s
flow name=a kind=cbr rate=200Kbps packet=1000B
)");
  const auto result = run_experiment(ExperimentSpec::parse(in));
  ASSERT_EQ(result.flows.size(), 1u);
  // Uncongested: delay ~ 2 transmissions (8 ms each) + 10 ms propagation.
  EXPECT_NEAR(to_milliseconds(result.flows[0].mean_delay), 26.0, 1.0);
  EXPECT_NEAR(result.flows[0].throughput, 200e3, 10e3);
}

TEST(ExperimentRun, DeterministicAcrossRuns) {
  const char* conf = R"(
scheduler SFQ
link rate=1Mbps
duration 3s
flow name=a kind=poisson rate=400Kbps packet=500B seed=42
flow name=b kind=onoff rate=800Kbps packet=750B weight=400Kbps seed=43
)";
  std::istringstream in1(conf), in2(conf);
  const auto r1 = run_experiment(ExperimentSpec::parse(in1));
  const auto r2 = run_experiment(ExperimentSpec::parse(in2));
  ASSERT_EQ(r1.flows.size(), r2.flows.size());
  for (std::size_t i = 0; i < r1.flows.size(); ++i) {
    EXPECT_EQ(r1.flows[i].packets_delivered, r2.flows[i].packets_delivered);
    EXPECT_DOUBLE_EQ(r1.flows[i].throughput, r2.flows[i].throughput);
    EXPECT_DOUBLE_EQ(r1.flows[i].mean_delay, r2.flows[i].mean_delay);
    EXPECT_DOUBLE_EQ(r1.flows[i].max_delay, r2.flows[i].max_delay);
  }
  EXPECT_DOUBLE_EQ(r1.worst_fairness_ratio, r2.worst_fairness_ratio);
}

TEST(ExperimentRun, VbrFlowWorks) {
  std::istringstream in(R"(
scheduler SFQ
link rate=5Mbps
duration 4s
flow name=tv kind=vbr rate=1.21Mbps packet=50B
flow name=bg kind=cbr rate=1Mbps packet=1000B
)");
  const auto result = run_experiment(ExperimentSpec::parse(in));
  EXPECT_NEAR(result.flows[0].throughput, 1.21e6, 0.3e6);
}

}  // namespace
}  // namespace sfq::config
