// CalendarQueue (src/core/calendar_queue.h): the hierarchical timestamp
// wheel behind the SFQ-W flow-scale core. Contract under test: pops come out
// in exactly (quantized tick, admission order) — i.e. the wheel equals an
// exact priority queue keyed by (floor(tag/quantum), insertion seq). The
// randomized differential drives both structures through the same mixed
// push/update/erase/pop stream, overflow band included, and demands
// identical pop sequences.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/calendar_queue.h"

namespace sfq {
namespace {

constexpr double kQuantum = 0.5;

uint64_t mix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Exact reference model: ordered by (tick, admission seq). std::map keeps it
// obviously-correct; the wheel must match it pop for pop.
class RefModel {
 public:
  explicit RefModel(double quantum) : quantum_(quantum) {}

  void push(uint32_t id, double tag, uint64_t seq) {
    const uint64_t tick = tag <= 0.0 ? 0 : static_cast<uint64_t>(tag / quantum_);
    order_.emplace(std::make_pair(tick, seq), id);
    by_id_[id] = std::make_pair(tick, seq);
  }
  void erase(uint32_t id) {
    order_.erase(by_id_.at(id));
    by_id_.erase(id);
  }
  bool contains(uint32_t id) const { return by_id_.count(id) != 0; }
  bool empty() const { return order_.empty(); }
  std::size_t size() const { return order_.size(); }
  uint32_t top_id() const { return order_.begin()->second; }
  uint64_t top_tick() const { return order_.begin()->first.first; }
  uint32_t pop() {
    const uint32_t id = top_id();
    erase(id);
    return id;
  }

 private:
  double quantum_;
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> order_;
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> by_id_;
};

// pop() is void (the caller reads top_id() first); take() bundles the two
// for test readability.
uint32_t take(CalendarQueue& q) {
  const uint32_t id = q.top_id();
  q.pop();
  return id;
}

TEST(CalendarQueue, RejectsNonPositiveQuantum) {
  EXPECT_THROW(CalendarQueue(0.0), std::invalid_argument);
  EXPECT_THROW(CalendarQueue(-1.0), std::invalid_argument);
}

TEST(CalendarQueue, FifoWithinOneQuantizationWindow) {
  // Three ids whose tags all land in the same bucket pop in admission order
  // even though their true tags are decreasing: that is the documented
  // quantized-order relaxation (order slack < one quantum).
  CalendarQueue q(1.0);
  q.push(0, 10.9);
  q.push(1, 10.5);
  q.push(2, 10.1);
  q.push(3, 11.0);  // next bucket: must come out after all of bucket 10
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(take(q), 0u);
  EXPECT_EQ(take(q), 1u);
  EXPECT_EQ(take(q), 2u);
  EXPECT_EQ(take(q), 3u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, DistantTagsCrossEveryLevelAndTheOverflowBand) {
  // One id per wheel level plus one beyond the top level's span (the
  // overflow heap). Pushed in increasing-tag order — the wheel's monotone
  // insert contract: tags never fall below the cursor — and popped back in
  // exactly that order.
  CalendarQueue q(1.0);
  const double tags[] = {3.0, 300.0, 70'000.0, 17'000'000.0, 4.6e9, 1.0e13};
  for (uint32_t i = 0; i < 6; ++i) q.push(i, tags[i]);
  EXPECT_GE(q.overflow_size(), 1u);  // 4.6e9 and 1e13 exceed the 2^32 span
  for (uint32_t i = 0; i < 6; ++i) EXPECT_EQ(take(q), i);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, UpdateMovesAndEraseRemoves) {
  CalendarQueue q(1.0);
  q.push(7, 100.0);
  q.push(8, 150.0);
  q.push(9, 200.0);
  EXPECT_TRUE(q.contains(8));
  q.update(8, 300.0);  // demote past everyone
  EXPECT_EQ(q.top_id(), 7u);
  q.erase(7);
  EXPECT_FALSE(q.contains(7));
  EXPECT_EQ(take(q), 9u);
  EXPECT_EQ(take(q), 8u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, ReanchorsAfterGoingEmpty) {
  // Drain completely, then insert a tag far beyond the old cursor: the wheel
  // re-anchors instead of scanning the gap.
  CalendarQueue q(1.0);
  q.push(1, 5.0);
  EXPECT_EQ(take(q), 1u);
  EXPECT_TRUE(q.empty());
  q.push(2, 1.0e12);
  q.push(3, 1.0e12 + 2.0);
  EXPECT_EQ(take(q), 2u);
  EXPECT_EQ(take(q), 3u);
}

// The core contract: the wheel is an exact priority queue over
// (quantized tick, admission order). Random mixed workload obeying the
// monotone insert contract (tags never fall below the cursor — the SFQ
// usage pattern, where every new tag is >= v(t)), spread wide enough to
// exercise all four levels and the overflow band, plus erase/update/pop
// interleaving.
TEST(CalendarQueue, RandomizedDifferentialAgainstExactModel) {
  for (const uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    CalendarQueue wheel(kQuantum);
    RefModel ref(kQuantum);
    uint64_t rng = seed * 0x9e3779b97f4a7c15ull + 1;
    uint64_t seq = 0;
    uint32_t next_id = 0;
    std::vector<uint32_t> live;

    // Contract floor for fresh tags: never below the wheel's cursor.
    const auto floor_tag = [&] {
      return static_cast<double>(wheel.cursor_tick()) * kQuantum;
    };

    for (int op_i = 0; op_i < 20'000; ++op_i) {
      const uint64_t r = mix64(rng);
      const unsigned op = r % 100;
      if (op < 45 || live.empty()) {
        // push: tag in [floor, floor + spread); spread occasionally huge so
        // the entry lands in a high level or the overflow heap.
        const uint64_t kind = (r >> 8) % 10;
        const double spread = kind < 6   ? 64.0
                              : kind < 8 ? 1.0e5
                              : kind < 9 ? 1.0e8
                                         : 1.0e13;
        const double tag =
            floor_tag() +
            spread * (static_cast<double>(mix64(rng) >> 11) * 0x1.0p-53);
        const uint32_t id = next_id++;
        wheel.push(id, tag);
        ref.push(id, tag, seq++);
        live.push_back(id);
      } else if (op < 60) {
        // update: re-key a random live id to a fresh tag >= the cursor.
        const uint32_t id = live[mix64(rng) % live.size()];
        const double tag =
            floor_tag() +
            1.0e5 * (static_cast<double>(mix64(rng) >> 11) * 0x1.0p-53);
        wheel.update(id, tag);
        ref.erase(id);
        ref.push(id, tag, seq++);
      } else if (op < 70) {
        const std::size_t k = mix64(rng) % live.size();
        const uint32_t id = live[k];
        wheel.erase(id);
        ref.erase(id);
        live[k] = live.back();
        live.pop_back();
      } else {
        ASSERT_EQ(wheel.empty(), ref.empty());
        if (ref.empty()) continue;
        ASSERT_EQ(wheel.top_id(), ref.top_id())
            << "seed " << seed << " op " << op_i;
        const uint32_t id = take(wheel);
        ASSERT_EQ(id, ref.pop());
        for (std::size_t k = 0; k < live.size(); ++k)
          if (live[k] == id) {
            live[k] = live.back();
            live.pop_back();
            break;
          }
      }
      ASSERT_EQ(wheel.size(), ref.size());
    }
    // Full drain must agree to the last entry.
    while (!ref.empty()) {
      ASSERT_FALSE(wheel.empty());
      ASSERT_EQ(take(wheel), ref.pop()) << "seed " << seed << " (drain)";
    }
    EXPECT_TRUE(wheel.empty());
  }
}

// Update semantics when an id moves *within* the same bucket: it re-enters
// at the bucket tail (a fresh admission), exactly like the reference model's
// erase + re-push with a new seq.
TEST(CalendarQueue, UpdateWithinBucketMovesToTail) {
  CalendarQueue q(1.0);
  q.push(1, 5.1);
  q.push(2, 5.5);
  q.update(1, 5.9);  // same bucket, but now behind id 2
  EXPECT_EQ(take(q), 2u);
  EXPECT_EQ(take(q), 1u);
}

}  // namespace
}  // namespace sfq
