#include <gtest/gtest.h>

#include <memory>

#include "harness.h"
#include "net/rate_profile.h"
#include "qos/bounds.h"
#include "sched/virtual_clock.h"
#include "stats/fairness.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits, Time arrival = 0.0) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  p.arrival = arrival;
  return p;
}

TEST(VirtualClock, EatRecursionMatchesEq37) {
  VirtualClockScheduler s;
  FlowId f = s.add_flow(2.0);  // rate 2 bits/s

  // EAT(p1) = A(p1) = 0; EAT(p2) = max(A=1, 0 + 4/2) = 2;
  // EAT(p3) = max(A=10, 2 + 2/2) = 10.
  s.enqueue(mk(f, 1, 4.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.last_eat(f), 0.0);
  s.enqueue(mk(f, 2, 2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.last_eat(f), 2.0);
  s.enqueue(mk(f, 3, 2.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(s.last_eat(f), 10.0);
}

TEST(VirtualClock, StampIsEatPlusServiceTime) {
  VirtualClockScheduler s;
  FlowId f = s.add_flow(4.0);
  s.enqueue(mk(f, 1, 8.0, 0.0), 0.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->start_tag, 0.0);   // EAT
  EXPECT_DOUBLE_EQ(p->finish_tag, 2.0);  // EAT + l/r
}

TEST(VirtualClock, ServesSmallestStampFirst) {
  VirtualClockScheduler s;
  FlowId slow = s.add_flow(1.0);
  FlowId fast = s.add_flow(10.0);
  s.enqueue(mk(slow, 1, 10.0, 0.0), 0.0);  // stamp 10
  s.enqueue(mk(fast, 1, 10.0, 0.0), 0.0);  // stamp 1
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, fast);
}

// The §1.1 complaint that motivates fair schedulers: Virtual Clock punishes
// a flow for having used idle capacity. Flow A transmits alone during [0,5)
// (banking far-future stamps); at t=5 flow B dumps a large burst and then
// monopolizes the link, starving A even though both have equal reservations.
TEST(VirtualClock, PunishesUseOfIdleBandwidth) {
  const double C = 100.0, len = 10.0;
  sim::Simulator sim;
  VirtualClockScheduler sched;
  FlowId a = sched.add_flow(10.0, len);
  FlowId b = sched.add_flow(10.0, len);
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(C));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };

  // A uses the whole idle link during [0,5): 50 packets, stamps run to ~50.
  traffic::CbrSource sa(sim, a, emit, /*rate=*/C, len);
  sa.run(0.0, 5.0);
  // A keeps offering 80 b/s after t=5.
  traffic::CbrSource sa2(sim, a, emit, 80.0, len);
  sa2.run(5.0, 10.0);
  // B bursts 100 packets at t=5 (its stamps start at EAT=5).
  std::vector<traffic::TraceSource::Item> burst;
  for (int i = 0; i < 100; ++i) burst.push_back({5.0, len});
  traffic::TraceSource sb(sim, b, emit, burst);
  sb.run(0.0, 11.0);

  sim.run_until(10.0);
  rec.finish(10.0);

  // During [5,10) B gets nearly all the capacity; A is serving out "debt".
  const double wa = rec.served_bits(a, 5.0, 10.0);
  const double wb = rec.served_bits(b, 5.0, 10.0);
  EXPECT_GT(wb, 3.0 * wa);

  // The unfairness blows through the fair-scheduler bound (Theorem 1 value).
  const double h = stats::empirical_fairness(rec, a, 10.0, b, 10.0);
  EXPECT_GT(h, 2.0 * qos::sfq_fairness_bound(len, 10.0, len, 10.0));
}

TEST(VirtualClock, UnknownFlowIsCountedDrop) {
  VirtualClockScheduler s;
  s.enqueue(mk(3, 1, 1.0), 0.0);  // never registered: dropped, not thrown
  EXPECT_EQ(s.unknown_flow_drops(), 1u);
  EXPECT_TRUE(s.empty());
}

TEST(VirtualClock, PerFlowOrderPreserved) {
  VirtualClockScheduler s;
  FlowId f = s.add_flow(1.0);
  for (int j = 1; j <= 5; ++j) s.enqueue(mk(f, j, 1.0, 0.0), 0.0);
  for (int j = 1; j <= 5; ++j) {
    auto p = s.dequeue(0.0);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->seq, static_cast<uint64_t>(j));
  }
}

}  // namespace
}  // namespace sfq
