// §3 heterogeneity: a class whose inside runs a different discipline
// (Delay-EDD, FIFO, or a nested fair queue) while competing with its
// siblings under SFQ.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "hier/hsfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "qos/admission.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "sched/edd_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "sim/simulator.h"
#include "stats/service_recorder.h"
#include "traffic/sources.h"

namespace sfq::hier {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits, Time arrival = 0.0) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  p.arrival = arrival;
  return p;
}

TEST(HsfqDelegation, InnerDisciplineOrdersWithinClass) {
  // FIFO inside the class: packets leave in arrival order even though their
  // weights differ (plain SFQ would interleave).
  HsfqScheduler s;
  auto cls = s.add_class(HsfqScheduler::kRootClass, 1.0, "fifo-class");
  s.attach_scheduler(cls, std::make_unique<FifoScheduler>());
  FlowId a = s.add_flow_in_class(cls, 1.0, 10.0);
  FlowId b = s.add_flow_in_class(cls, 100.0, 10.0);

  s.enqueue(mk(a, 1, 10.0), 0.0);
  s.enqueue(mk(b, 1, 10.0), 0.0);
  s.enqueue(mk(a, 2, 10.0), 0.0);

  std::vector<std::pair<FlowId, uint64_t>> order;
  while (auto p = s.dequeue(0.0)) {
    order.push_back({p->flow, p->seq});
    s.on_transmit_complete(*p, 0.0);
  }
  EXPECT_EQ(order, (std::vector<std::pair<FlowId, uint64_t>>{
                       {a, 1}, {b, 1}, {a, 2}}));
}

TEST(HsfqDelegation, ClassCompetesWithSfqSiblings) {
  // A delegated class with weight 1 against a plain flow with weight 1:
  // long-run split must still be 50/50 — delegation changes the inside, not
  // the class's share.
  sim::Simulator sim;
  HsfqScheduler s;
  auto cls = s.add_class(HsfqScheduler::kRootClass, 1.0, "edd");
  s.attach_scheduler(cls, std::make_unique<EddScheduler>());
  auto* edd = dynamic_cast<EddScheduler*>(s.inner_scheduler(cls));
  ASSERT_NE(edd, nullptr);
  FlowId in_cls = s.add_flow_in_class(cls, 100.0, 10.0);
  edd->set_deadline(0, 0.2);  // local id 0
  FlowId plain = s.add_flow_in_class(HsfqScheduler::kRootClass, 1.0, 10.0);

  net::ScheduledServer server(sim, s,
                              std::make_unique<net::ConstantRate>(100.0));
  stats::ServiceRecorder rec;
  server.set_recorder(&rec);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource s1(sim, in_cls, emit, 200.0, 10.0);
  traffic::CbrSource s2(sim, plain, emit, 200.0, 10.0);
  s1.run(0.0, 10.0);
  s2.run(0.0, 10.0);
  sim.run_until(10.0);
  rec.finish(10.0);

  EXPECT_NEAR(rec.served_bits(in_cls), rec.served_bits(plain),
              0.1 * rec.served_bits(plain));
}

TEST(HsfqDelegation, BacklogAccountingSpansInnerScheduler) {
  HsfqScheduler s;
  auto cls = s.add_class(HsfqScheduler::kRootClass, 1.0);
  s.attach_scheduler(cls, std::make_unique<FifoScheduler>());
  FlowId f = s.add_flow_in_class(cls, 1.0, 10.0);
  FlowId g = s.add_flow_in_class(HsfqScheduler::kRootClass, 1.0, 10.0);

  EXPECT_TRUE(s.empty());
  s.enqueue(mk(f, 1, 7.0), 0.0);
  s.enqueue(mk(g, 1, 3.0), 0.0);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.backlog_packets(), 2u);
  EXPECT_DOUBLE_EQ(s.backlog_bits(f), 7.0);
  EXPECT_DOUBLE_EQ(s.backlog_bits(g), 3.0);
  while (auto p = s.dequeue(0.0)) s.on_transmit_complete(*p, 0.0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.backlog_packets(), 0u);
}

// Theorem 7 inside an eq.-65 class: EDD deadlines are met within
// l_max/C_cls + delta_cls/C_cls, where (C_cls, delta_cls) are the class's
// virtual-server parameters — the §3 "separation of delay and throughput".
TEST(HsfqDelegation, TheoremSevenInsideClass) {
  const double C = 1000.0;
  const double len = 20.0;
  const double cls_rate = 500.0;

  sim::Simulator sim;
  HsfqScheduler s;
  auto cls = s.add_class(HsfqScheduler::kRootClass, cls_rate, "rt");
  s.attach_scheduler(cls, std::make_unique<EddScheduler>());
  auto* edd = dynamic_cast<EddScheduler*>(s.inner_scheduler(cls));

  // Two EDD flows, same rate, very different deadlines.
  std::vector<qos::EddFlow> spec = {{200.0, len, 0.15}, {200.0, len, 0.6}};
  FlowId f_tight = s.add_flow_in_class(cls, spec[0].rate, len);
  FlowId f_loose = s.add_flow_in_class(cls, spec[1].rate, len);
  edd->set_deadline(0, spec[0].deadline);
  edd->set_deadline(1, spec[1].deadline);
  // A greedy best-effort sibling takes the other half of the link.
  FlowId be = s.add_flow_in_class(HsfqScheduler::kRootClass, C - cls_rate, len);

  // Class virtual server: FC(cls_rate, delta) with
  // delta = cls_rate*(sum lmax at root)/C + lmax  (eq. 65, link delta = 0).
  const qos::FcParams cls_params =
      qos::hsfq_class_params({C, 0.0}, cls_rate, 2.0 * len, len);
  ASSERT_TRUE(qos::edd_schedulable(spec, cls_params.rate));
  const Time slack = qos::edd_fc_delay_slack(cls_params, len);

  net::ScheduledServer server(sim, s, std::make_unique<net::ConstantRate>(C));
  qos::PerFlowEat eat;
  std::vector<std::vector<Time>> deadline(2);
  Time worst_overrun = -kTimeInfinity;
  server.set_departure([&](const Packet& p, Time t) {
    if (p.flow == f_tight || p.flow == f_loose) {
      const std::size_t i = p.flow == f_tight ? 0 : 1;
      worst_overrun = std::max(worst_overrun, t - deadline[i][p.seq - 1]);
    }
  });
  auto emit_rt = [&](Packet p) {
    const std::size_t i = p.flow == f_tight ? 0 : 1;
    const Time e = eat.on_arrival(p.flow, sim.now(), p.length_bits,
                                  spec[i].rate);
    deadline[i].push_back(e + spec[i].deadline);
    server.inject(std::move(p));
  };
  auto emit_be = [&](Packet p) { server.inject(std::move(p)); };

  traffic::PoissonSource p1(sim, f_tight, emit_rt, spec[0].rate * 0.9, len, 3);
  traffic::PoissonSource p2(sim, f_loose, emit_rt, spec[1].rate * 0.9, len, 4);
  traffic::CbrSource p3(sim, be, emit_be, C, len);
  p1.run(0.0, 15.0);
  p2.run(0.0, 15.0);
  p3.run(0.0, 15.0);
  sim.run_until(15.0);
  sim.run();

  EXPECT_LE(worst_overrun, slack + 1e-9);
}

TEST(HsfqDelegation, StructureValidation) {
  HsfqScheduler s;
  auto cls = s.add_class(HsfqScheduler::kRootClass, 1.0);
  // Cannot attach to the root or to a class with children.
  EXPECT_THROW(s.attach_scheduler(HsfqScheduler::kRootClass,
                                  std::make_unique<FifoScheduler>()),
               std::invalid_argument);
  auto busy = s.add_class(HsfqScheduler::kRootClass, 1.0);
  s.add_flow_in_class(busy, 1.0);
  EXPECT_THROW(s.attach_scheduler(busy, std::make_unique<FifoScheduler>()),
               std::invalid_argument);
  // Cannot nest a class under a delegated class.
  s.attach_scheduler(cls, std::make_unique<FifoScheduler>());
  EXPECT_THROW(s.add_class(cls, 1.0), std::invalid_argument);
  // Double-attach rejected.
  EXPECT_THROW(s.attach_scheduler(cls, std::make_unique<FifoScheduler>()),
               std::invalid_argument);
  EXPECT_EQ(s.inner_scheduler(cls)->name(), "FIFO");
  EXPECT_EQ(s.inner_scheduler(HsfqScheduler::kRootClass), nullptr);
}

}  // namespace
}  // namespace sfq::hier
