#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/sfq_scheduler.h"
#include "net/fragmentation.h"
#include "net/network.h"
#include "net/rate_profile.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "qos/end_to_end.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

namespace sfq::net {
namespace {

TEST(Fragmenter, SmallPacketPassesThrough) {
  std::vector<Packet> out;
  Fragmenter f(1000.0, [&](Packet p) { out.push_back(std::move(p)); });
  Packet p;
  p.flow = 1;
  p.seq = 9;
  p.length_bits = 800.0;
  f.inject(p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].frag_count, 1u);
  EXPECT_DOUBLE_EQ(out[0].length_bits, 800.0);
}

TEST(Fragmenter, SplitsOnMtuAndPreservesBits) {
  std::vector<Packet> out;
  Fragmenter f(1000.0, [&](Packet p) { out.push_back(std::move(p)); });
  Packet p;
  p.flow = 2;
  p.seq = 3;
  p.length_bits = 2500.0;
  f.inject(p);
  ASSERT_EQ(out.size(), 3u);
  double bits = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].frag_index, i);
    EXPECT_EQ(out[i].frag_count, 3u);
    EXPECT_EQ(out[i].seq, 3u);
    EXPECT_LE(out[i].length_bits, 1000.0 + 1e-9);
    bits += out[i].length_bits;
  }
  EXPECT_DOUBLE_EQ(bits, 2500.0);
}

TEST(Reassembler, RebuildsInAnyOrder) {
  std::vector<Packet> done;
  Reassembler r([&](Packet p, Time) { done.push_back(std::move(p)); });
  std::vector<Packet> frags;
  Fragmenter f(100.0, [&](Packet p) { frags.push_back(std::move(p)); });
  Packet p;
  p.flow = 5;
  p.seq = 7;
  p.length_bits = 250.0;
  f.inject(p);
  ASSERT_EQ(frags.size(), 3u);
  // Deliver out of order.
  r.on_fragment(frags[2], 1.0);
  r.on_fragment(frags[0], 2.0);
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(r.pending(), 1u);
  r.on_fragment(frags[1], 3.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0].length_bits, 250.0);
  EXPECT_EQ(done[0].seq, 7u);
  EXPECT_EQ(done[0].frag_count, 1u);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Reassembler, InterleavedFlowsKeptApart) {
  std::vector<Packet> done;
  Reassembler r([&](Packet p, Time) { done.push_back(std::move(p)); });
  auto frag = [](FlowId flow, uint64_t seq, uint32_t idx, uint32_t count) {
    Packet p;
    p.flow = flow;
    p.seq = seq;
    p.length_bits = 10.0;
    p.frag_index = idx;
    p.frag_count = count;
    return p;
  };
  r.on_fragment(frag(1, 1, 0, 2), 0.0);
  r.on_fragment(frag(2, 1, 0, 2), 0.0);
  r.on_fragment(frag(1, 1, 1, 2), 0.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].flow, 1u);
  r.on_fragment(frag(2, 1, 1, 2), 0.0);
  EXPECT_EQ(done.size(), 2u);
}

// §2.4's closing claim, exercised end-to-end: large packets fragmented to the
// path MTU at ingress, scheduled per fragment by SFQ at every hop, and
// reassembled at egress still meet a Corollary-1-style deadline computed at
// fragment granularity (rate shared by the fragments, EAT per fragment).
TEST(Fragmentation, EndToEndBoundWithReassembly) {
  const double C = 1e6;
  const double mtu = 1000.0;
  const double big = 3000.0;  // 3 fragments per packet
  const double rate = 0.3 * C;
  const Time prop = 0.001;

  sim::Simulator sim;
  std::vector<TandemNetwork::Hop> hops;
  for (int i = 0; i < 2; ++i) {
    TandemNetwork::Hop h;
    h.scheduler = std::make_unique<SfqScheduler>();
    h.profile = std::make_unique<ConstantRate>(C);
    h.propagation_to_next = i == 0 ? prop : 0.0;
    hops.push_back(std::move(h));
  }
  TandemNetwork net(sim, std::move(hops));
  FlowId tagged = net.add_flow(rate, mtu);
  FlowId cross = net.add_flow(0.7 * C, mtu);

  // Composed bound for *fragments* of the tagged flow.
  std::vector<qos::HopGuarantee> hg = {
      qos::sfq_fc_hop({C, 0.0}, mtu, mtu, prop),
      qos::sfq_fc_hop({C, 0.0}, mtu, mtu, 0.0),
  };
  const auto g = qos::compose(hg);

  qos::EatTracker eat;
  std::vector<Time> frag_eat;  // EAT of each fragment, in emission order

  Time worst = -kTimeInfinity;
  uint64_t rebuilt = 0;
  Reassembler reasm([&](Packet p, Time t) {
    if (p.flow != tagged) return;
    ++rebuilt;
    // The packet completes when its LAST fragment lands. Fragments are
    // emitted consecutively (3 per packet, seq preserved), so the last
    // fragment of original seq s has emission index 3*(s-1)+2.
    const std::size_t last_idx = 3 * (p.seq - 1) + 2;
    worst = std::max(worst, t - frag_eat[last_idx]);
  });
  net.set_delivery([&](const Packet& p, Time t) { reasm.on_fragment(p, t); });

  Fragmenter frag(mtu, [&](Packet p) {
    if (p.flow == tagged)
      frag_eat.push_back(eat.on_arrival(sim.now(), p.length_bits, rate));
    net.inject(std::move(p));
  });

  traffic::CbrSource tagged_src(
      sim, tagged, [&](Packet p) { frag.inject(std::move(p)); }, rate * 0.9,
      big);
  traffic::CbrSource cross_src(
      sim, cross, [&](Packet p) { net.inject(std::move(p)); }, C, mtu);
  tagged_src.run(0.0, 10.0);
  cross_src.run(0.0, 10.0);
  sim.run_until(10.0);
  sim.run();

  EXPECT_GT(rebuilt, 200u);
  // Every emitted tagged packet was rebuilt exactly once, and the rebuild
  // time stayed within the fragment-level Corollary-1 bound.
  EXPECT_EQ(rebuilt, tagged_src.emitted());
  EXPECT_LE(worst, g.theta + 1e-9);
}

}  // namespace
}  // namespace sfq::net
