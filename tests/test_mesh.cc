#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/sfq_scheduler.h"
#include "net/mesh.h"
#include "net/rate_profile.h"
#include "qos/eat.h"
#include "qos/end_to_end.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

namespace sfq::net {
namespace {

Packet mk(uint64_t seq, double bits) {
  Packet p;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

struct YTopology {
  // a --l0--> c --l2--> d     (flow "long" takes l0,l2; flow "cross" l1,l2)
  // b --l1--> c
  sim::Simulator sim;
  std::unique_ptr<MeshNetwork> mesh;
  MeshNetwork::LinkId l0, l1, l2;

  explicit YTopology(double trunk_rate = 1000.0) {
    mesh = std::make_unique<MeshNetwork>(sim);
    auto a = mesh->add_node("a");
    auto b = mesh->add_node("b");
    auto c = mesh->add_node("c");
    auto d = mesh->add_node("d");
    l0 = mesh->add_link(a, c, std::make_unique<SfqScheduler>(),
                        std::make_unique<ConstantRate>(2000.0), 0.01);
    l1 = mesh->add_link(b, c, std::make_unique<SfqScheduler>(),
                        std::make_unique<ConstantRate>(2000.0), 0.01);
    l2 = mesh->add_link(c, d, std::make_unique<SfqScheduler>(),
                        std::make_unique<ConstantRate>(trunk_rate), 0.0);
  }
};

TEST(Mesh, RoutesValidateConnectivity) {
  YTopology y;
  EXPECT_THROW(y.mesh->add_flow({y.l0, y.l1}, 1.0), std::invalid_argument);
  EXPECT_THROW(y.mesh->add_flow({}, 1.0), std::invalid_argument);
  EXPECT_THROW(y.mesh->add_flow({99}, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(y.mesh->add_flow({y.l0, y.l2}, 1.0));
}

TEST(Mesh, DeliversAlongRouteWithPropagation) {
  YTopology y;
  FlowId f = y.mesh->add_flow({y.l0, y.l2}, 1.0, 100.0, "long");
  Time delivered = -1.0;
  uint32_t hops = 0;
  FlowId seen = kInvalidFlow;
  y.mesh->set_delivery([&](const Packet& p, Time t) {
    delivered = t;
    hops = p.hops;
    seen = p.flow;
  });
  y.sim.at(0.0, [&] { y.mesh->inject(f, mk(1, 100.0)); });
  y.sim.run();
  // 100 bits at 2000 b/s (0.05) + 0.01 prop + 100 bits at 1000 b/s (0.1).
  EXPECT_DOUBLE_EQ(delivered, 0.16);
  EXPECT_EQ(hops, 2u);
  EXPECT_EQ(seen, f);  // global id restored at delivery
}

TEST(Mesh, CrossFlowsShareOnlyTheTrunk) {
  YTopology y;
  FlowId lng = y.mesh->add_flow({y.l0, y.l2}, 1.0, 50.0, "long");
  FlowId crs = y.mesh->add_flow({y.l1, y.l2}, 1.0, 50.0, "cross");

  uint64_t got_long = 0, got_cross = 0;
  y.mesh->set_delivery([&](const Packet& p, Time) {
    (p.flow == lng ? got_long : got_cross)++;
  });
  auto emit_long = [&](Packet p) { y.mesh->inject(lng, std::move(p)); };
  auto emit_cross = [&](Packet p) { y.mesh->inject(crs, std::move(p)); };
  traffic::CbrSource s1(y.sim, 0, emit_long, 1500.0, 50.0);
  traffic::CbrSource s2(y.sim, 0, emit_cross, 1500.0, 50.0);
  s1.run(0.0, 10.0);
  s2.run(0.0, 10.0);
  y.sim.run_until(10.0);
  y.mesh->finish_recording();

  // Access links (2000 b/s) pass 1500 b/s untouched; the 1000 b/s trunk is
  // the bottleneck and SFQ splits it evenly.
  const double share_long =
      y.mesh->link_recorder(y.l2).served_bits(y.mesh->local_id(lng, 1));
  const double share_cross =
      y.mesh->link_recorder(y.l2).served_bits(y.mesh->local_id(crs, 1));
  EXPECT_NEAR(share_long / share_cross, 1.0, 0.1);
  EXPECT_NEAR(share_long + share_cross, 1000.0 * 10.0, 600.0);
  EXPECT_GT(got_long, 90u);
  EXPECT_GT(got_cross, 90u);
}

// Corollary 1 on a mesh: per-hop beta uses each hop's *own* competitor set.
// The tagged flow shares hop l0 with nothing and hop l2 with the cross flow.
TEST(Mesh, CorollaryOneWithPerHopFlowSets) {
  YTopology y(1000.0);
  const double r_tag = 400.0, r_cross = 600.0, len = 50.0;
  FlowId tag = y.mesh->add_flow({y.l0, y.l2}, r_tag, len, "tag");
  FlowId crs = y.mesh->add_flow({y.l1, y.l2}, r_cross, len, "cross");

  // Hop 1 (l0): tagged alone -> sum_other = 0. Hop 2 (l2): one competitor.
  std::vector<qos::HopGuarantee> hg = {
      qos::sfq_fc_hop({2000.0, 0.0}, 0.0, len, 0.01),
      qos::sfq_fc_hop({1000.0, 0.0}, len, len, 0.0),
  };
  const auto g = qos::compose(hg);

  std::vector<Time> eat1;
  qos::EatTracker eat;
  Time worst = -kTimeInfinity;
  y.mesh->set_delivery([&](const Packet& p, Time t) {
    if (p.flow == tag) worst = std::max(worst, t - eat1[p.seq - 1]);
  });
  auto emit_tag = [&](Packet p) {
    eat1.push_back(eat.on_arrival(y.sim.now(), p.length_bits, r_tag));
    y.mesh->inject(tag, std::move(p));
  };
  auto emit_cross = [&](Packet p) { y.mesh->inject(crs, std::move(p)); };
  traffic::PoissonSource s1(y.sim, 0, emit_tag, 0.9 * r_tag, len, 3);
  traffic::CbrSource s2(y.sim, 0, emit_cross, 2.0 * r_cross, len);
  s1.run(0.0, 10.0);
  s2.run(0.0, 10.0);
  y.sim.run_until(10.0);
  y.sim.run();

  EXPECT_GT(eat1.size(), 50u);
  EXPECT_LE(worst, g.theta + 1e-9);
}

TEST(Mesh, PerFlowOrderPreservedAcrossMesh) {
  YTopology y;
  FlowId f = y.mesh->add_flow({y.l0, y.l2}, 1.0, 50.0);
  FlowId g = y.mesh->add_flow({y.l1, y.l2}, 1.0, 50.0);
  std::vector<uint64_t> seq_f;
  y.mesh->set_delivery([&](const Packet& p, Time) {
    if (p.flow == f) seq_f.push_back(p.seq);
  });
  auto emit_f = [&](Packet p) { y.mesh->inject(f, std::move(p)); };
  auto emit_g = [&](Packet p) { y.mesh->inject(g, std::move(p)); };
  traffic::PoissonSource s1(y.sim, 0, emit_f, 800.0, 50.0, 5);
  traffic::PoissonSource s2(y.sim, 0, emit_g, 800.0, 50.0, 6);
  s1.run(0.0, 5.0);
  s2.run(0.0, 5.0);
  y.sim.run();
  ASSERT_GT(seq_f.size(), 20u);
  for (std::size_t i = 1; i < seq_f.size(); ++i)
    EXPECT_EQ(seq_f[i], seq_f[i - 1] + 1);
}

}  // namespace
}  // namespace sfq::net
