#include <gtest/gtest.h>

#include <memory>

#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sched/fifo_scheduler.h"
#include "sim/simulator.h"
#include "traffic/tcp_reno.h"

namespace sfq::traffic {
namespace {

// One TCP connection over a single bottleneck with a fixed-delay ack path.
struct TcpHarness {
  sim::Simulator sim;
  FifoScheduler sched;
  net::ScheduledServer link;
  std::unique_ptr<TcpRenoSource> src;
  std::unique_ptr<TcpRenoSink> sink;
  Time ack_delay;
  uint64_t delivered = 0;

  TcpHarness(double capacity, Time ack_delay_, TcpRenoSource::Params p,
             std::size_t buffer_limit = 0)
      : link(sim, sched, std::make_unique<net::ConstantRate>(capacity)),
        ack_delay(ack_delay_) {
    if (buffer_limit) link.set_buffer_limit(buffer_limit);
    sink = std::make_unique<TcpRenoSink>([this](uint64_t cum) {
      sim.after(ack_delay, [this, cum] { src->on_ack(cum); });
    });
    link.set_departure([this](const Packet& q, Time) {
      ++delivered;
      sink->on_segment(q);
    });
    src = std::make_unique<TcpRenoSource>(
        sim, 0, p, [this](Packet q) { link.inject(std::move(q)); });
  }
};

TEST(TcpRenoSink, CumulativeAcksInOrder) {
  uint64_t last = 0;
  TcpRenoSink sink([&](uint64_t cum) { last = cum; });
  Packet p;
  p.seq = 1;
  sink.on_segment(p);
  EXPECT_EQ(last, 1u);
  p.seq = 3;  // gap
  sink.on_segment(p);
  EXPECT_EQ(last, 1u);  // dup ack
  p.seq = 2;  // fills the gap
  sink.on_segment(p);
  EXPECT_EQ(last, 3u);
  EXPECT_EQ(sink.received_in_order(), 3u);
}

TEST(TcpReno, SlowStartDoublesWindow) {
  TcpRenoSource::Params p;
  p.packet_bits = 100.0;
  p.max_window = 64.0;
  TcpHarness h(1e6, 0.05, p);  // fast link, 100 ms RTT
  h.src->start(0.0);
  h.sim.run_until(0.32);  // ~3 RTTs
  // cwnd should have grown well beyond 1 (roughly doubling per RTT).
  EXPECT_GE(h.src->cwnd(), 6.0);
  EXPECT_EQ(h.src->timeouts(), 0u);
}

TEST(TcpReno, WindowCapLimitsInFlight) {
  TcpRenoSource::Params p;
  p.packet_bits = 100.0;
  p.max_window = 4.0;
  p.initial_ssthresh = 64.0;
  TcpHarness h(1e9, 0.5, p);  // huge link, long RTT: window-limited
  h.src->start(0.0);
  // After several RTTs cwnd has grown past the cap, but unacknowledged data
  // never exceeds the receiver window.
  h.sim.run_until(8.0);
  EXPECT_GT(h.src->sent(), 8u);
  EXPECT_LE(h.src->sent(), h.sink->received_in_order() + 4);
}

TEST(TcpReno, AckClockedThroughputMatchesBottleneck) {
  TcpRenoSource::Params p;
  p.packet_bits = 1000.0;
  p.max_window = 100.0;
  TcpHarness h(1e5, 0.01, p);  // 100 kb/s bottleneck
  h.src->start(0.0);
  h.sim.run_until(20.0);
  // Goodput approaches the bottleneck rate.
  const double goodput =
      static_cast<double>(h.delivered) * p.packet_bits / 20.0;
  EXPECT_GT(goodput, 0.85 * 1e5);
  EXPECT_EQ(h.src->timeouts(), 0u);  // infinite buffer: no loss
}

TEST(TcpReno, RecoversFromLossViaFastRetransmit) {
  TcpRenoSource::Params p;
  p.packet_bits = 1000.0;
  p.max_window = 64.0;
  p.initial_ssthresh = 64.0;
  TcpHarness h(1e5, 0.01, p, /*buffer_limit=*/10);  // small buffer => drops
  h.src->start(0.0);
  h.sim.run_until(30.0);
  EXPECT_GT(h.link.drops(), 0u);
  EXPECT_GT(h.src->retransmits(), 0u);
  // Despite losses the connection keeps moving: most offered data arrives.
  const double goodput =
      static_cast<double>(h.sink->received_in_order()) * p.packet_bits / 30.0;
  EXPECT_GT(goodput, 0.7 * 1e5);
}

TEST(TcpReno, TimeoutPathRecovers) {
  // Tiny window prevents 3 dupacks, forcing RTO on a drop.
  TcpRenoSource::Params p;
  p.packet_bits = 1000.0;
  p.max_window = 2.0;
  p.rto_initial = 0.3;
  TcpHarness h(1e5, 0.01, p, /*buffer_limit=*/1);
  h.src->start(0.0);
  h.sim.run_until(30.0);
  if (h.link.drops() > 0) {
    EXPECT_GT(h.src->timeouts(), 0u);
  }
  // Connection still delivers in order.
  EXPECT_GT(h.sink->received_in_order(), 100u);
}

TEST(TcpReno, StopHaltsTransmission) {
  TcpRenoSource::Params p;
  TcpHarness h(1e6, 0.05, p);
  h.src->start(0.0);
  h.sim.run_until(0.5);
  const uint64_t sent = h.src->sent();
  h.src->stop();
  h.sim.run_until(2.0);
  EXPECT_EQ(h.src->sent(), sent);
}

}  // namespace
}  // namespace sfq::traffic
