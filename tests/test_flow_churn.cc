// Flow churn (leave / rejoin mid-run) across every discipline, plus the
// pushout overload policy. The paper-correct rejoin rule: a flow that leaves
// and comes back resumes with S = max(v(t), previous finish tag) — removal
// rolls per-flow tag state back to the first removed packet's start tag,
// which is exactly equivalent (S_1 = max(v(A_1), F_0) and later arrivals
// take max against a v' >= v(A_1)).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "core/sfq_scheduler.h"
#include "hier/hsfq_scheduler.h"
#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sched/drr_scheduler.h"
#include "sched/edd_scheduler.h"
#include "sched/fair_airport.h"
#include "sched/fifo_scheduler.h"
#include "sched/scfq_scheduler.h"
#include "sched/virtual_clock.h"
#include "sched/wfq_scheduler.h"
#include "sched/wrr_scheduler.h"
#include "sim/simulator.h"
#include "traffic/sources.h"

namespace sfq {
namespace {

constexpr double kCap = 1000.0;

std::unique_ptr<Scheduler> make(const std::string& name) {
  if (name == "SFQ") return std::make_unique<SfqScheduler>();
  if (name == "SCFQ") return std::make_unique<ScfqScheduler>();
  if (name == "WFQ") return std::make_unique<WfqScheduler>(kCap);
  if (name == "FQS") return std::make_unique<FqsScheduler>(kCap);
  if (name == "DRR") return std::make_unique<DrrScheduler>(100.0);
  if (name == "VC") return std::make_unique<VirtualClockScheduler>();
  if (name == "EDD") return std::make_unique<EddScheduler>();
  if (name == "FIFO") return std::make_unique<FifoScheduler>();
  if (name == "WRR") return std::make_unique<WrrScheduler>();
  if (name == "FairAirport") return std::make_unique<FairAirportScheduler>();
  if (name == "HSFQ") return std::make_unique<hier::HsfqScheduler>();
  throw std::invalid_argument(name);
}

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

class EverySchedulerChurn : public ::testing::TestWithParam<const char*> {};

// Leave mid-backlog: the removed flow's packets come back in FIFO order, the
// survivor keeps draining, arrivals for the departed flow are counted drops,
// and a rejoin restores service — no exceptions anywhere.
TEST_P(EverySchedulerChurn, RemoveFlushesRejoinRestores) {
  auto sched = make(GetParam());
  const FlowId a = sched->add_flow(100.0, 60.0);
  const FlowId b = sched->add_flow(100.0, 60.0);

  for (uint64_t j = 1; j <= 5; ++j) {
    sched->enqueue(mk(a, j, 60.0), 0.0);
    sched->enqueue(mk(b, j, 60.0), 0.0);
  }
  // Serve a couple so removal happens mid-schedule, not from a fresh queue.
  uint64_t served_a = 0, served_b = 0;
  for (int k = 0; k < 3; ++k) {
    auto p = sched->dequeue(0.0);
    ASSERT_TRUE(p) << GetParam();
    sched->on_transmit_complete(*p, 0.0);
    (p->flow == a ? served_a : served_b)++;
  }

  const std::vector<Packet> flushed = sched->remove_flow(a, 0.0);
  EXPECT_EQ(flushed.size() + served_a, 5u) << GetParam();
  for (std::size_t i = 0; i < flushed.size(); ++i) {
    EXPECT_EQ(flushed[i].flow, a) << GetParam();
    if (i > 0) {
      EXPECT_GT(flushed[i].seq, flushed[i - 1].seq) << GetParam();
    }
  }
  EXPECT_DOUBLE_EQ(sched->backlog_bits(a), 0.0) << GetParam();

  // Arrivals while away are counted drops — except in flow-agnostic
  // disciplines (FIFO), which accept any flow id and simply queue the packet.
  const bool gated = sched->requires_registered_flows();
  const uint64_t drops_before = sched->unknown_flow_drops();
  sched->enqueue(mk(a, 6, 60.0), 0.0);
  EXPECT_EQ(sched->unknown_flow_drops(), drops_before + (gated ? 1 : 0))
      << GetParam();

  // The survivor drains untouched.
  uint64_t stray_a = 0;
  while (auto p = sched->dequeue(0.0)) {
    if (gated) {
      EXPECT_EQ(p->flow, b) << GetParam();
    }
    sched->on_transmit_complete(*p, 0.0);
    (p->flow == b ? served_b : stray_a)++;
  }
  EXPECT_EQ(served_b, 5u) << GetParam();
  EXPECT_EQ(stray_a, gated ? 0u : 1u) << GetParam();
  EXPECT_TRUE(sched->empty()) << GetParam();

  // Rejoin: service resumes.
  sched->rejoin_flow(a, 0.0);
  sched->enqueue(mk(a, 7, 60.0), 0.0);
  auto p = sched->dequeue(0.0);
  ASSERT_TRUE(p) << GetParam();
  EXPECT_EQ(p->flow, a) << GetParam();
  sched->on_transmit_complete(*p, 0.0);
  EXPECT_TRUE(sched->empty()) << GetParam();
}

// Churn under live traffic: every emitted packet is delivered, flushed, or
// counted as a drop — nothing lost, nothing duplicated, nothing thrown.
TEST_P(EverySchedulerChurn, ChurnUnderLoadConservesPackets) {
  auto sched = make(GetParam());
  sim::Simulator sim;
  net::ScheduledServer server(sim, *sched,
                              std::make_unique<net::ConstantRate>(kCap));
  const FlowId a = sched->add_flow(400.0, 80.0);
  const FlowId b = sched->add_flow(600.0, 80.0);

  uint64_t delivered = 0, dropped = 0;
  server.set_departure([&](const Packet&, Time) { ++delivered; });
  server.set_drop([&](const Packet&, Time) { ++dropped; });

  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource sa(sim, a, emit, 800.0, 80.0);
  traffic::CbrSource sb(sim, b, emit, 1200.0, 80.0);
  sa.run(0.0, 6.0);
  sb.run(0.0, 6.0);

  // a leaves at 2s (flushing its backlog), rejoins at 4s; its source keeps
  // emitting throughout, so the middle third drops as unknown_flow.
  sim.at(2.0, [&] { server.remove_flow(a); });
  sim.at(4.0, [&] { server.rejoin_flow(a); });

  sim.run_until(6.0);
  sim.run();

  EXPECT_EQ(delivered + dropped, sa.emitted() + sb.emitted()) << GetParam();
  EXPECT_GT(server.drops(obs::DropCause::kUnknownFlow), 0u) << GetParam();
  EXPECT_TRUE(sched->empty()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, EverySchedulerChurn,
                         ::testing::Values("SFQ", "SCFQ", "WFQ", "FQS", "DRR",
                                           "VC", "EDD", "FIFO", "WRR",
                                           "FairAirport", "HSFQ"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// --- Exact tag re-anchoring (paper rule) ---------------------------------

TEST(SfqChurn, RejoinResumesAtMaxOfVtimeAndPreviousFinish) {
  SfqScheduler s;
  const FlowId a = s.add_flow(1.0);  // l/r = 10 per 10-bit packet
  s.add_flow(1.0);                   // second flow keeps the table honest
  s.enqueue(mk(a, 1, 10.0), 0.0);    // S=0  F=10
  s.enqueue(mk(a, 2, 10.0), 0.0);    // S=10 F=20
  s.enqueue(mk(a, 3, 10.0), 0.0);    // S=20 F=30

  auto p1 = s.dequeue(0.0);  // serves a1, v = S(a1) = 0
  ASSERT_TRUE(p1);
  EXPECT_DOUBLE_EQ(p1->start_tag, 0.0);

  // Remove with a2, a3 still queued: tag state rolls back to S(a2) = 10,
  // which equals F(a1) — as if a2, a3 never arrived.
  const auto flushed = s.remove_flow(a, 0.0);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_DOUBLE_EQ(flushed.front().start_tag, 10.0);

  s.rejoin_flow(a, 0.0);
  s.enqueue(mk(a, 4, 10.0), 0.0);  // S = max(v=0, F_prev=10) = 10
  auto p4 = s.dequeue(0.0);
  ASSERT_TRUE(p4);
  EXPECT_DOUBLE_EQ(p4->start_tag, 10.0);
  EXPECT_DOUBLE_EQ(p4->finish_tag, 20.0);

  // Leave with nothing queued: finish tag memory is retained verbatim.
  const auto none = s.remove_flow(a, 0.0);
  EXPECT_TRUE(none.empty());
  s.rejoin_flow(a, 0.0);
  s.enqueue(mk(a, 5, 10.0), 0.0);  // S = max(v=10, F_prev=20) = 20
  auto p5 = s.dequeue(0.0);
  ASSERT_TRUE(p5);
  EXPECT_DOUBLE_EQ(p5->start_tag, 20.0);
}

TEST(ScfqChurn, RollbackRestoresFinishTagChain) {
  ScfqScheduler s;
  const FlowId a = s.add_flow(1.0);
  s.enqueue(mk(a, 1, 10.0), 0.0);  // S=0  F=10
  s.enqueue(mk(a, 2, 10.0), 0.0);  // S=10 F=20
  auto p1 = s.dequeue(0.0);  // SCFQ: v = F(a1) = 10 while a1 is in service
  ASSERT_TRUE(p1);

  const auto flushed = s.remove_flow(a, 0.0);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_DOUBLE_EQ(flushed.front().start_tag, 10.0);

  s.rejoin_flow(a, 0.0);
  s.enqueue(mk(a, 3, 10.0), 0.0);  // S = max(v=10, F_rolled=10) = 10
  auto p3 = s.dequeue(0.0);
  ASSERT_TRUE(p3);
  EXPECT_DOUBLE_EQ(p3->start_tag, 10.0);
  EXPECT_DOUBLE_EQ(p3->finish_tag, 20.0);
}

TEST(VirtualClockChurn, EatRollsBackToFirstRemovedPacket) {
  VirtualClockScheduler s;
  const FlowId f = s.add_flow(2.0);
  Packet p1 = mk(f, 1, 4.0);
  p1.arrival = 0.0;
  s.enqueue(std::move(p1), 0.0);   // EAT = 0
  Packet p2 = mk(f, 2, 2.0);
  p2.arrival = 1.0;
  s.enqueue(std::move(p2), 1.0);   // EAT = max(1, 0+2) = 2
  EXPECT_DOUBLE_EQ(s.last_eat(f), 2.0);

  // Remove both queued packets: EAT state rewinds to p1's EAT with no
  // outstanding bits — as if neither had arrived.
  const auto flushed = s.remove_flow(f, 1.0);
  ASSERT_EQ(flushed.size(), 2u);

  s.rejoin_flow(f, 5.0);
  Packet p3 = mk(f, 3, 2.0);
  p3.arrival = 5.0;
  s.enqueue(std::move(p3), 5.0);   // EAT = max(5, 0+0) = 5
  EXPECT_DOUBLE_EQ(s.last_eat(f), 5.0);
}

// --- Pushout (longest-queue-drop) ----------------------------------------

TEST(Pushout, EvictsNewestPacketOfLongestQueue) {
  sim::Simulator sim;
  SfqScheduler sched;
  const FlowId a = sched.add_flow(100.0, 100.0);
  const FlowId b = sched.add_flow(100.0, 100.0);
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(1.0));
  server.set_buffer_limit(4);
  server.set_overload_policy(net::OverloadPolicy::kPushout);

  FlowId victim_flow = kInvalidFlow;
  uint64_t victim_seq = 0;
  server.set_drop([&](const Packet& p, Time) {
    victim_flow = p.flow;
    victim_seq = p.seq;
  });

  // First inject goes straight to the (slow) link; the next four fill the
  // buffer: a has 300 queued bits, b has 10.
  server.inject(mk(b, 1, 10.0));
  server.inject(mk(a, 1, 100.0));
  server.inject(mk(a, 2, 100.0));
  server.inject(mk(a, 3, 100.0));
  server.inject(mk(b, 2, 10.0));
  ASSERT_EQ(sched.backlog_packets(), 4u);

  // Overflow: the longest queue (a) loses its *newest* packet; the arrival
  // is admitted.
  EXPECT_TRUE(server.inject(mk(b, 3, 10.0)));
  EXPECT_EQ(server.drops(obs::DropCause::kPushout), 1u);
  EXPECT_EQ(victim_flow, a);
  EXPECT_EQ(victim_seq, 3u);
  EXPECT_EQ(sched.backlog_packets(), 4u);
  EXPECT_DOUBLE_EQ(sched.backlog_bits(a), 200.0);
}

TEST(Pushout, TailDropPolicyDropsTheArrivalInstead) {
  sim::Simulator sim;
  SfqScheduler sched;
  const FlowId a = sched.add_flow(100.0, 100.0);
  const FlowId b = sched.add_flow(100.0, 100.0);
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(1.0));
  server.set_buffer_limit(2);  // default policy: tail drop

  server.inject(mk(a, 1, 100.0));  // straight onto the link
  server.inject(mk(a, 2, 100.0));
  server.inject(mk(a, 3, 100.0));
  EXPECT_FALSE(server.inject(mk(b, 1, 10.0)));  // arrival rejected
  EXPECT_EQ(server.drops(obs::DropCause::kBufferLimit), 1u);
  EXPECT_EQ(server.drops(obs::DropCause::kPushout), 0u);
  EXPECT_DOUBLE_EQ(sched.backlog_bits(a), 200.0);  // a untouched
}

// --- H-SFQ specifics ------------------------------------------------------

TEST(HsfqChurn, LeafRemovalReleasesClassShare) {
  hier::HsfqScheduler s;
  const FlowId a = s.add_flow(1.0, 10.0);
  const FlowId b = s.add_flow(3.0, 10.0);
  for (uint64_t j = 1; j <= 4; ++j) {
    s.enqueue(mk(a, j, 10.0), 0.0);
    s.enqueue(mk(b, j, 10.0), 0.0);
  }
  const auto flushed = s.remove_flow(a, 0.0);
  EXPECT_EQ(flushed.size(), 4u);
  // b drains alone; removal while b is active must not disturb its chain.
  std::size_t served = 0;
  while (auto p = s.dequeue(0.0)) {
    EXPECT_EQ(p->flow, b);
    s.on_transmit_complete(*p, 0.0);
    ++served;
  }
  EXPECT_EQ(served, 4u);
  s.rejoin_flow(a, 0.0);
  s.enqueue(mk(a, 9, 10.0), 0.0);
  auto p = s.dequeue(0.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, a);
}

}  // namespace
}  // namespace sfq
