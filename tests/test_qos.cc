#include <gtest/gtest.h>

#include <cmath>

#include "core/types.h"
#include "qos/admission.h"
#include "qos/bounds.h"
#include "qos/eat.h"
#include "qos/end_to_end.h"

namespace sfq::qos {
namespace {

// --- The paper's §2.3 numeric example --------------------------------------

TEST(Bounds, Section23ScfqGapNumericExample) {
  // r = 64 Kb/s (the paper's 24.4 ms figure implies the 1024-based Kb),
  // l = 200 bytes, C = 100 Mb/s: gap = l/r - l/C = 24.4 ms.
  const double r = 64.0 * 1024.0;
  const double l = bytes(200);
  const double c = megabits_per_sec(100);
  EXPECT_NEAR(to_milliseconds(scfq_sfq_delay_gap(c, l, r)), 24.4, 0.05);
}

TEST(Bounds, Section23WfqComparisonExample) {
  // 70 x 1 Mb/s + 200 x 64 Kb/s flows on 100 Mb/s, 200-byte packets. The
  // paper quotes a ~20.39 ms drop for the 64 Kb/s flows and a ~2.48 ms rise
  // for the 1 Mb/s flows; evaluating eq. 58 exactly gives 20.1 / -2.7 ms
  // (the paper's numbers carry its own rounding), so we assert the shape.
  const double c = megabits_per_sec(100);
  const double l = bytes(200);
  const std::size_t q = 270;
  const double sum_other = static_cast<double>(q - 1) * l;

  const Time d_low = wfq_sfq_delay_delta(c, l, sum_other, l, 64.0 * 1024.0);
  EXPECT_GT(to_milliseconds(d_low), 19.0);
  EXPECT_LT(to_milliseconds(d_low), 21.0);

  const Time d_high = wfq_sfq_delay_delta(c, l, sum_other, l, megabits_per_sec(1));
  EXPECT_GT(to_milliseconds(d_high), -3.0);
  EXPECT_LT(to_milliseconds(d_high), -2.0);
}

TEST(Bounds, Eq60ThresholdMatchesDeltaSignUniform) {
  const double c = megabits_per_sec(100);
  const double l = bytes(200);
  for (std::size_t q : {2u, 5u, 20u, 100u}) {
    for (double r : {64e3, 1e6, 10e6, 60e6}) {
      const double sum_other = static_cast<double>(q - 1) * l;
      const Time delta = wfq_sfq_delay_delta(c, l, sum_other, l, r);
      EXPECT_EQ(delta >= -1e-12, sfq_beats_wfq_uniform(r, c, q))
          << "q=" << q << " r=" << r;
    }
  }
}

TEST(Bounds, FairnessBoundSymmetricAndPositive) {
  EXPECT_DOUBLE_EQ(sfq_fairness_bound(100, 10, 200, 20),
                   sfq_fairness_bound(200, 20, 100, 10));
  EXPECT_GT(sfq_fairness_bound(1, 1, 1, 1), 0.0);
}

TEST(Bounds, TheoremTwoReducesToConstantRateWhenDeltaZero) {
  const double b1 = sfq_fc_throughput_lower_bound({1000, 0}, 100, 200, 50,
                                                  0.0, 10.0);
  const double b2 = sfq_fc_throughput_lower_bound({1000, 500}, 100, 200, 50,
                                                  0.0, 10.0);
  EXPECT_GT(b1, b2);  // burstiness only weakens the guarantee
  EXPECT_NEAR(b1, 100 * 10 - 100 * 200 / 1000.0 - 50, 1e-9);
}

TEST(Bounds, EbfViolationProbabilityDecaysExponentially) {
  EbfParams p{1000.0, 2.0, 0.01, 100.0};
  EXPECT_NEAR(sfq_ebf_throughput_violation_prob(p, 0.0), 2.0, 1e-12);
  const double a = sfq_ebf_throughput_violation_prob(p, 100.0);
  const double b = sfq_ebf_throughput_violation_prob(p, 200.0);
  EXPECT_NEAR(a / b, std::exp(0.01 * 100.0), 1e-9);
  // Delay-domain lambda = alpha * C.
  EXPECT_NEAR(sfq_ebf_delay_violation_prob(p, 0.01),
              2.0 * std::exp(-0.01 * 1000.0 * 0.01), 1e-12);
}

// --- Eq. 65 class recursion --------------------------------------------------

TEST(Bounds, ClassParamsRecursion) {
  const FcParams link{1000.0, 0.0};
  const FcParams a = hsfq_class_params(link, 500.0, 300.0, 100.0);
  EXPECT_DOUBLE_EQ(a.rate, 500.0);
  EXPECT_DOUBLE_EQ(a.delta, 500.0 * 300.0 / 1000.0 + 0.0 + 100.0);
  // Recursing again uses the class as the server.
  const FcParams b = hsfq_class_params(a, 250.0, 200.0, 100.0);
  EXPECT_DOUBLE_EQ(b.rate, 250.0);
  EXPECT_DOUBLE_EQ(b.delta, 250.0 * 200.0 / 500.0 + 250.0 * a.delta / 500.0 +
                                100.0);
}

// --- §3 delay shifting -------------------------------------------------------

TEST(Bounds, DelayShiftConditionEq73) {
  // |Q| = 40 flows, K = 4 partitions of 10 each; a partition holding 10% of
  // the flows but 40% of the capacity gets a better bound.
  EXPECT_TRUE(delay_shift_improves(4, 40, 4, 400.0, 1000.0));
  // A partition with proportional capacity does not (LHS (11)/36 > 0.25).
  EXPECT_FALSE(delay_shift_improves(10, 40, 4, 250.0, 1000.0));
}

TEST(Bounds, DelayShiftTermsConsistentWithCondition) {
  const FcParams link{1000.0, 0.0};
  const double l = 100.0;
  const std::size_t q_total = 40, k = 4;
  // Favoured partition: few flows, large share.
  {
    const std::size_t qi = 4;
    const double ci = 400.0;
    const Time flat = delay_shift_flat_term(link, q_total, l);
    const Time hier = delay_shift_hier_term(link, qi, ci, k, l);
    EXPECT_EQ(hier < flat, delay_shift_improves(qi, q_total, k, ci, 1000.0));
    EXPECT_LT(hier, flat);
  }
  // Un-favoured partition pays for it.
  {
    const std::size_t qi = 12;
    const double ci = 200.0;
    const Time flat = delay_shift_flat_term(link, q_total, l);
    const Time hier = delay_shift_hier_term(link, qi, ci, k, l);
    EXPECT_GT(hier, flat);
  }
}

// --- End-to-end composition (Theorem 6 / Corollary 1) ------------------------

TEST(EndToEnd, DeterministicCompositionAddsBetasAndPropagation) {
  std::vector<HopGuarantee> hops = {
      sfq_fc_hop({1e6, 0.0}, 3000.0, 1000.0, 0.010),
      sfq_fc_hop({2e6, 1e4}, 5000.0, 1000.0, 0.020),
      sfq_fc_hop({1e6, 0.0}, 3000.0, 1000.0, 0.0),
  };
  const auto g = compose(hops);
  EXPECT_TRUE(g.deterministic);
  const Time beta1 = (3000.0 + 1000.0) / 1e6;
  const Time beta2 = (5000.0 + 1000.0 + 1e4) / 2e6;
  EXPECT_NEAR(g.theta, beta1 * 2 + beta2 + 0.030, 1e-12);
  EXPECT_DOUBLE_EQ(g.violation_prob(0.0), 0.0);
}

TEST(EndToEnd, StochasticCompositionSumsBAndHarmonicLambda) {
  EbfParams e1{1e6, 1.0, 1e-4, 0.0};
  EbfParams e2{1e6, 0.5, 2e-4, 0.0};
  std::vector<HopGuarantee> hops = {
      sfq_ebf_hop(e1, 3000.0, 1000.0, 0.0),
      sfq_ebf_hop(e2, 3000.0, 1000.0, 0.0),
  };
  const auto g = compose(hops);
  EXPECT_FALSE(g.deterministic);
  EXPECT_DOUBLE_EQ(g.b_sum, 1.5);
  const double l1 = 1e-4 * 1e6, l2 = 2e-4 * 1e6;
  EXPECT_NEAR(g.lambda_eff, 1.0 / (1.0 / l1 + 1.0 / l2), 1e-9);
  EXPECT_NEAR(g.violation_prob(0.01),
              1.5 * std::exp(-0.01 * g.lambda_eff), 1e-12);
}

TEST(EndToEnd, MixedFcEbfComposition) {
  std::vector<HopGuarantee> hops = {
      sfq_fc_hop({1e6, 0.0}, 1000.0, 500.0, 0.005),
      sfq_ebf_hop({1e6, 1.0, 1e-4, 0.0}, 1000.0, 500.0, 0.0),
  };
  const auto g = compose(hops);
  EXPECT_FALSE(g.deterministic);
  EXPECT_DOUBLE_EQ(g.b_sum, 1.0);  // only the EBF hop contributes
  EXPECT_NEAR(g.lambda_eff, 1e-4 * 1e6, 1e-9);
}

TEST(EndToEnd, LeakyBucketDelayBound) {
  // A.5: d <= sigma/r - l/r + theta.
  std::vector<HopGuarantee> hops = {sfq_fc_hop({1e6, 0.0}, 2000.0, 500.0, 0.0)};
  const auto g = compose(hops);
  const Time d =
      leaky_bucket_e2e_delay_bound(g, /*sigma=*/5000.0, /*rate=*/1e5, 500.0);
  EXPECT_NEAR(d, 5000.0 / 1e5 - 500.0 / 1e5 + g.theta, 1e-12);
}

// --- EAT tracker --------------------------------------------------------------

TEST(Eat, RecursionMatchesEq37) {
  EatTracker t;
  EXPECT_DOUBLE_EQ(t.on_arrival(0.0, 4.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(t.on_arrival(1.0, 2.0, 2.0), 2.0);   // max(1, 0+2)
  EXPECT_DOUBLE_EQ(t.on_arrival(10.0, 2.0, 2.0), 10.0); // max(10, 3)
  t.reset();
  EXPECT_DOUBLE_EQ(t.on_arrival(5.0, 1.0, 1.0), 5.0);
}

TEST(Eat, PerPacketRatesAffectSpacing) {
  EatTracker t;
  EXPECT_DOUBLE_EQ(t.on_arrival(0.0, 10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(t.on_arrival(0.0, 10.0, 2.0), 1.0);  // prev l/r = 1
  EXPECT_DOUBLE_EQ(t.on_arrival(0.0, 10.0, 2.0), 6.0);  // prev l/r = 5
}

// --- rates admissible ----------------------------------------------------------

TEST(Admission, SumRateCheck) {
  EXPECT_TRUE(rates_admissible({100, 200, 300}, 600));
  EXPECT_TRUE(rates_admissible({100, 200, 300}, 601));
  EXPECT_FALSE(rates_admissible({100, 200, 302}, 600));
  EXPECT_TRUE(rates_admissible({}, 0));
}


TEST(EndToEnd, BufferSizingAndLossBound) {
  // Deterministic path: a buffer covering theta implies zero loss.
  std::vector<HopGuarantee> fc = {sfq_fc_hop({1e6, 0.0}, 2000.0, 500.0, 0.0)};
  const auto g = compose(fc);
  EXPECT_DOUBLE_EQ(loss_probability_bound(g, g.theta), 0.0);
  EXPECT_DOUBLE_EQ(loss_probability_bound(g, g.theta / 2.0), 1.0);

  // Stochastic path: loss probability decays with extra headroom.
  std::vector<HopGuarantee> ebf = {
      sfq_ebf_hop({1e6, 1.0, 1e-4, 0.0}, 2000.0, 500.0, 0.0)};
  const auto gs = compose(ebf);
  const double p1 = loss_probability_bound(gs, gs.theta + 0.01);
  const double p2 = loss_probability_bound(gs, gs.theta + 0.02);
  EXPECT_GT(p1, p2);
  EXPECT_GT(p2, 0.0);

  // Buffer arithmetic: burst plus rate x holding time.
  EXPECT_DOUBLE_EQ(lossless_buffer_bits(5000.0, 1e5, 0.05), 5000.0 + 5000.0);
}

}  // namespace
}  // namespace sfq::qos
