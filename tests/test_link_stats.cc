#include <gtest/gtest.h>

#include <memory>

#include "net/rate_profile.h"
#include "net/scheduled_server.h"
#include "sched/fifo_scheduler.h"
#include "sim/simulator.h"
#include "stats/link_stats.h"
#include "traffic/sources.h"

namespace sfq::stats {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

TEST(LinkStats, HandComputedBusyAndQueue) {
  LinkStats ls;
  // Two back-to-back transmissions, a gap, one more.
  ls.on_queue_sample(0.0, 2);
  ls.on_transmit_start(0.0);
  ls.on_queue_sample(0.0, 1);
  ls.on_transmit_end(1.0);
  ls.on_transmit_start(1.0);
  ls.on_queue_sample(1.0, 0);
  ls.on_transmit_end(2.0);
  ls.on_transmit_start(5.0);
  ls.on_transmit_end(6.0);
  ls.finish(10.0);

  EXPECT_DOUBLE_EQ(ls.busy_time(), 3.0);
  EXPECT_DOUBLE_EQ(ls.utilization(10.0), 0.3);
  EXPECT_EQ(ls.transmissions(), 3u);
  EXPECT_EQ(ls.busy_periods(), 2u);
  EXPECT_DOUBLE_EQ(ls.longest_busy_period(), 2.0);
  // Queue: 2 for [0,0] (zero span), 1 for [0,1], 0 afterwards.
  EXPECT_NEAR(ls.mean_queue_packets(), 1.0 / 10.0, 1e-9);
  EXPECT_EQ(ls.max_queue_packets(), 2u);
}

TEST(LinkStats, ServerIntegrationSaturatedLink) {
  sim::Simulator sim;
  FifoScheduler sched;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(100.0));
  LinkStats ls;
  server.set_link_stats(&ls);
  auto emit = [&](Packet p) { server.inject(std::move(p)); };
  traffic::CbrSource src(sim, 0, emit, 200.0, 10.0);  // 2x overload
  src.run(0.0, 10.0);
  sim.run_until(10.0);
  ls.finish(10.0);

  EXPECT_NEAR(ls.utilization(10.0), 1.0, 0.02);
  EXPECT_EQ(ls.busy_periods(), 1u);
  EXPECT_GT(ls.mean_queue_packets(), 20.0);  // the standing queue grows
}

TEST(LinkStats, ServerIntegrationLightLoad) {
  sim::Simulator sim;
  FifoScheduler sched;
  net::ScheduledServer server(sim, sched,
                              std::make_unique<net::ConstantRate>(100.0));
  LinkStats ls;
  server.set_link_stats(&ls);
  sim.at(0.0, [&] { server.inject(mk(0, 1, 10.0)); });
  sim.at(5.0, [&] { server.inject(mk(0, 2, 10.0)); });
  sim.run();
  ls.finish(10.0);

  EXPECT_NEAR(ls.utilization(10.0), 0.02, 1e-9);
  EXPECT_EQ(ls.busy_periods(), 2u);
  EXPECT_EQ(ls.transmissions(), 2u);
  // The post-enqueue sample sees each packet for an instant before it enters
  // service; no standing queue ever forms beyond that.
  EXPECT_EQ(ls.max_queue_packets(), 1u);
  EXPECT_NEAR(ls.mean_queue_packets(), 0.0, 1e-9);
}

}  // namespace
}  // namespace sfq::stats
