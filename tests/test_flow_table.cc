// FlowTable (src/core/flow_table.*): the flat flow registry behind every
// scheduler. Pins the three behaviours this PR fixed:
//   * flow-id recycling — reclaim() returns slots to a free list, so churn
//     no longer grows the table (the flow-id leak: before, remove_flow just
//     deactivated and every add grew the slot vector forever);
//   * incremental aggregates — total_weight()/total_max_packet_bits()/
//     sum_other_max_packets() are O(1) maintained values (formerly O(n)
//     scans per call) and must stay exactly consistent with a manual scan
//     under arbitrary add/reclaim/set_active interleavings;
//   * the unified out-of-range contract — active()/contains() total and
//     non-throwing for ANY id (kInvalidFlow included), spec()/weight()/
//     set_active() throwing std::out_of_range for any non-live id (formerly
//     active() silently returned false past the end while spec() threw,
//     and a dead slot's stale spec was readable).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "core/flow_table.h"
#include "core/sfq_scheduler.h"

namespace sfq {
namespace {

// ---- Satellite 1: the flow-id leak -----------------------------------------

TEST(FlowTable, ChurnCyclesDoNotGrowTheTable) {
  // 100k add/reclaim cycles against a 4-flow steady population. With the
  // free list, the slot universe stays at its high-water mark (5); the
  // pre-fix behaviour grew it by one slot per cycle (~100k slots).
  FlowTable t;
  for (int i = 0; i < 4; ++i) t.add(10.0, 100.0);
  for (int cycle = 0; cycle < 100'000; ++cycle) {
    const FlowId id = t.add(5.0, 50.0);
    t.reclaim(id);
  }
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.live_count(), 4u);
}

TEST(FlowTable, ReclaimIsLifoAndDeterministic) {
  FlowTable t;
  const FlowId a = t.add(1.0);
  const FlowId b = t.add(2.0);
  const FlowId c = t.add(3.0);
  t.reclaim(a);
  t.reclaim(c);
  // LIFO free list: the most recently reclaimed id comes back first.
  EXPECT_EQ(t.add(4.0), c);
  EXPECT_EQ(t.add(5.0), a);
  EXPECT_EQ(t.add(6.0), 3u);  // free list empty: extend the universe
  EXPECT_TRUE(t.contains(b));
  EXPECT_EQ(t.size(), 4u);
}

TEST(SfqSchedulerGc, BoundedTableAfter100kChurnCycles) {
  // End-to-end flavour of the same fix: SFQ with flow_gc removes and
  // re-registers a flow 100k times. Retired ids become reclaimable once
  // v(t) >= their F_prev (immediately here: the churned flow never queues a
  // packet), so the table stays at its high-water mark instead of leaking
  // one id per cycle.
  SfqOptions opts;
  opts.flow_gc = true;
  SfqScheduler sched(opts);
  sched.add_flow(100.0, 60.0);  // a bystander that stays put
  FlowId id = sched.add_flow(100.0, 60.0);
  for (int cycle = 0; cycle < 100'000; ++cycle) {
    sched.remove_flow(id, 0.0);
    const FlowId fresh = sched.add_flow(100.0, 60.0);
    ASSERT_EQ(fresh, id) << "cycle " << cycle;  // recycled, not leaked
    id = fresh;
  }
  EXPECT_EQ(sched.flows().size(), 2u);
  EXPECT_EQ(sched.gc_pending(), 0u);
}

// ---- Satellite 2: incremental aggregates -----------------------------------

// Manual scan over the slot vector — the pre-fix definition of the
// aggregates, kept here as the oracle.
double scan_total_weight(const FlowTable& t) {
  double sum = 0.0;
  for (const FlowSpec& s : t.slots())
    if (s.id != kInvalidFlow && s.active) sum += s.weight;
  return sum;
}
double scan_total_max_packet_bits(const FlowTable& t) {
  double sum = 0.0;
  for (const FlowSpec& s : t.slots())
    if (s.id != kInvalidFlow && s.active) sum += s.max_packet_bits;
  return sum;
}

uint64_t mix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(FlowTable, AggregatesMatchScanUnderRandomChurn) {
  FlowTable t;
  std::vector<FlowId> live;
  uint64_t rng = 42;
  for (int op = 0; op < 50'000; ++op) {
    const unsigned pick = mix64(rng) % 100;
    if (pick < 40 || live.empty()) {
      const double w = 1.0 + static_cast<double>(mix64(rng) % 1000);
      const double l = static_cast<double>(mix64(rng) % 16) * 100.0;
      live.push_back(t.add(w, l));
    } else if (pick < 60) {
      const std::size_t k = mix64(rng) % live.size();
      t.reclaim(live[k]);
      live[k] = live.back();
      live.pop_back();
    } else {
      const FlowId f = live[mix64(rng) % live.size()];
      t.set_active(f, mix64(rng) % 2 == 0);
    }
    if (op % 1000 == 0) {
      // The incremental values drift by at most a few ulps between the
      // periodic exact rebuilds; the tolerance below is far tighter than
      // anything an admission check (sum r_n <= C) could resolve.
      ASSERT_NEAR(t.total_weight(), scan_total_weight(t),
                  1e-6 * (1.0 + scan_total_weight(t)))
          << "op " << op;
      ASSERT_NEAR(t.total_max_packet_bits(), scan_total_max_packet_bits(t),
                  1e-6 * (1.0 + scan_total_max_packet_bits(t)))
          << "op " << op;
    }
  }
  // After the dust settles the relationship sum_other = total - own must
  // hold exactly for every live flow (it is computed from the same value).
  for (const FlowId f : live) {
    if (t.active(f)) {
      EXPECT_DOUBLE_EQ(t.sum_other_max_packets(f),
                       t.total_max_packet_bits() - t.spec(f).max_packet_bits);
    }
  }
}

TEST(FlowTable, DepartedFlowReleasesItsAggregateShare) {
  FlowTable t;
  const FlowId a = t.add(30.0, 300.0);
  const FlowId b = t.add(10.0, 100.0);
  EXPECT_DOUBLE_EQ(t.total_weight(), 40.0);
  EXPECT_DOUBLE_EQ(t.sum_other_max_packets(a), 100.0);
  t.set_active(b, false);
  EXPECT_DOUBLE_EQ(t.total_weight(), 30.0);
  EXPECT_DOUBLE_EQ(t.total_max_packet_bits(), 300.0);
  // An inactive flow contributes nothing — including to its own exclusion.
  EXPECT_DOUBLE_EQ(t.sum_other_max_packets(b), 300.0);
  t.set_active(b, true);
  EXPECT_DOUBLE_EQ(t.total_weight(), 40.0);
  t.reclaim(b);
  EXPECT_DOUBLE_EQ(t.total_weight(), 30.0);
  EXPECT_DOUBLE_EQ(t.total_max_packet_bits(), 300.0);
}

// ---- Satellite 3: the unified out-of-range contract ------------------------

TEST(FlowTable, QueriesAreTotalAndAccessorsThrowForNonLiveIds) {
  FlowTable t;
  const FlowId a = t.add(1.0, 10.0);
  const FlowId dead = t.add(2.0, 20.0);
  t.reclaim(dead);

  // Total, non-throwing queries — any id whatsoever.
  EXPECT_TRUE(t.contains(a));
  EXPECT_TRUE(t.active(a));
  EXPECT_FALSE(t.contains(dead));
  EXPECT_FALSE(t.active(dead));
  EXPECT_FALSE(t.contains(t.size()));
  EXPECT_FALSE(t.active(t.size()));
  EXPECT_FALSE(t.contains(t.size() + 1000));
  EXPECT_FALSE(t.contains(kInvalidFlow));
  EXPECT_FALSE(t.active(kInvalidFlow));

  // Throwing accessors — out_of_range for every class of non-live id.
  EXPECT_THROW(t.spec(dead), std::out_of_range);
  EXPECT_THROW(t.weight(dead), std::out_of_range);
  EXPECT_THROW(t.set_active(dead, true), std::out_of_range);
  EXPECT_THROW(t.spec(t.size()), std::out_of_range);
  EXPECT_THROW(t.weight(t.size() + 7), std::out_of_range);
  EXPECT_THROW(t.spec(kInvalidFlow), std::out_of_range);
  EXPECT_THROW(t.set_active(kInvalidFlow, false), std::out_of_range);

  // A dead slot is invisible through slots() iteration guards too.
  for (const FlowSpec& s : t.slots()) {
    if (s.id == kInvalidFlow) {
      EXPECT_FALSE(s.active);
    }
  }
}

TEST(FlowTable, KeyIndexSurvivesReclaimAndRejectsDuplicates) {
  FlowTable t;
  const FlowId a = t.add(1.0);
  const FlowId b = t.add(2.0);
  t.bind_key(1111, a);
  t.bind_key(2222, b);
  EXPECT_EQ(t.find(1111), a);
  EXPECT_EQ(t.find(2222), b);
  EXPECT_EQ(t.find(3333), kInvalidFlow);

  EXPECT_THROW(t.bind_key(1111, b), std::invalid_argument);  // key taken
  EXPECT_THROW(t.bind_key(4444, a), std::invalid_argument);  // flow keyed
  EXPECT_THROW(t.bind_key(5555, kInvalidFlow), std::out_of_range);

  t.reclaim(a);  // unbinds automatically
  EXPECT_EQ(t.find(1111), kInvalidFlow);
  const FlowId reused = t.add(3.0);
  EXPECT_EQ(reused, a);
  EXPECT_EQ(t.find(1111), kInvalidFlow);  // the recycled id is NOT the old key
  t.bind_key(1111, reused);               // ...but the key is free to rebind
  EXPECT_EQ(t.find(1111), reused);
}

TEST(FlowTable, KeyIndexHandlesCollisionChurnAtScale) {
  // Thousands of bind/unbind cycles through reclaim stress the linear-probe
  // backward-shift deletion: every surviving key must stay findable.
  FlowTable t;
  t.reserve(512);
  std::vector<std::pair<uint64_t, FlowId>> bound;
  uint64_t rng = 7;
  for (int op = 0; op < 20'000; ++op) {
    if (bound.size() < 256 && (bound.empty() || mix64(rng) % 3 != 0)) {
      const uint64_t key = mix64(rng) | 1;
      const FlowId id = t.add(1.0);
      t.bind_key(key, id);
      bound.emplace_back(key, id);
    } else {
      const std::size_t k = mix64(rng) % bound.size();
      t.reclaim(bound[k].second);
      bound[k] = bound.back();
      bound.pop_back();
    }
    if (op % 500 == 0) {
      for (const auto& [key, id] : bound)
        ASSERT_EQ(t.find(key), id) << "op " << op;
    }
  }
  for (const auto& [key, id] : bound) ASSERT_EQ(t.find(key), id);
}

}  // namespace
}  // namespace sfq
