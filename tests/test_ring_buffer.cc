#include "core/ring_buffer.h"

#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <string>

namespace sfq {
namespace {

TEST(RingBuffer, BasicFifo) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  for (int i = 0; i < 20; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 20u);
  EXPECT_EQ(rb.front(), 0);
  EXPECT_EQ(rb.back(), 19);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rb[static_cast<std::size_t>(i)], i);
  rb.pop_front();
  EXPECT_EQ(rb.front(), 1);
  rb.pop_back();
  EXPECT_EQ(rb.back(), 18);
  EXPECT_EQ(rb.size(), 18u);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_GE(rb.capacity(), 20u);  // storage retained across clear
}

TEST(RingBuffer, WrapsAroundWithoutGrowing) {
  RingBuffer<int> rb;
  for (int i = 0; i < 8; ++i) rb.push_back(i);
  const std::size_t cap = rb.capacity();
  // Oscillate around a steady depth many times the capacity.
  int next = 8;
  for (int round = 0; round < 1000; ++round) {
    rb.pop_front();
    rb.push_back(next++);
    EXPECT_EQ(rb.size(), 8u);
    EXPECT_EQ(rb.front(), next - 8);
    EXPECT_EQ(rb.back(), next - 1);
  }
  EXPECT_EQ(rb.capacity(), cap);
}

// RingBuffer only allocates inside grow(), and grow() always changes
// capacity(); a stable capacity across a long steady-state churn therefore
// proves the loop allocation-free (the end-to-end zero-alloc gate lives in
// bench_scheduler_perf).
TEST(RingBuffer, SteadyStateKeepsCapacityStable) {
  RingBuffer<int> rb;
  for (int i = 0; i < 64; ++i) rb.push_back(i);
  while (!rb.empty()) rb.pop_front();
  const std::size_t cap = rb.capacity();
  int next = 0;
  for (int round = 0; round < 10000; ++round) {
    rb.push_back(next++);
    if (round % 3 == 0 && !rb.empty()) rb.pop_front();
    if (rb.size() >= 60) rb.clear();
  }
  EXPECT_EQ(rb.capacity(), cap);
}

TEST(RingBuffer, MoveOnlyFriendlyTypes) {
  RingBuffer<std::string> rb;
  rb.push_back(std::string(100, 'a'));
  rb.push_back(std::string(100, 'b'));
  std::string s = std::move(rb.front());
  rb.pop_front();
  EXPECT_EQ(s, std::string(100, 'a'));
  EXPECT_EQ(rb.front(), std::string(100, 'b'));
}

// Differential fuzz against std::deque: same random op stream, same
// observable state after every step.
TEST(RingBuffer, FuzzAgainstDeque) {
  std::mt19937_64 rng(0xfa15e5eedULL);
  RingBuffer<uint64_t> rb;
  std::deque<uint64_t> ref;
  for (int step = 0; step < 200000; ++step) {
    const uint32_t op = static_cast<uint32_t>(rng() % 100);
    if (op < 55 || ref.empty()) {
      const uint64_t v = rng();
      rb.push_back(v);
      ref.push_back(v);
    } else if (op < 80) {
      rb.pop_front();
      ref.pop_front();
    } else if (op < 95) {
      rb.pop_back();
      ref.pop_back();
    } else if (op < 97) {
      rb.clear();
      ref.clear();
    } else if (!ref.empty()) {
      const std::size_t i = static_cast<std::size_t>(rng() % ref.size());
      ASSERT_EQ(rb[i], ref[i]) << "step " << step << " index " << i;
    }
    ASSERT_EQ(rb.size(), ref.size()) << "step " << step;
    ASSERT_EQ(rb.empty(), ref.empty()) << "step " << step;
    if (!ref.empty()) {
      ASSERT_EQ(rb.front(), ref.front()) << "step " << step;
      ASSERT_EQ(rb.back(), ref.back()) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace sfq
