// Cross-module integration tests: whole-path scenarios exercising simulator +
// schedulers + servers + traffic + stats together.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/sfq_scheduler.h"
#include "net/network.h"
#include "net/priority_server.h"
#include "net/rate_profile.h"
#include "qos/eat.h"
#include "qos/end_to_end.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "traffic/leaky_bucket.h"
#include "traffic/sink.h"
#include "traffic/sources.h"
#include "traffic/tcp_reno.h"

namespace sfq {
namespace {

// End-to-end Corollary 1 on a 3-hop all-FC tandem with cross traffic: every
// tagged packet leaves within EAT^1 + theta.
TEST(Integration, CorollaryOneDeterministicBoundHolds) {
  const double C = 1e6, delta = 4e4, len = 1000.0;
  const Time prop = 0.001;
  const int hops_n = 3;

  sim::Simulator sim;
  std::vector<net::TandemNetwork::Hop> hops;
  for (int i = 0; i < hops_n; ++i) {
    net::TandemNetwork::Hop h;
    h.scheduler = std::make_unique<SfqScheduler>();
    h.profile = std::make_unique<net::FcOnOffRate>(C, delta, 0.5, 0.003 * i);
    h.propagation_to_next = i + 1 < hops_n ? prop : 0.0;
    hops.push_back(std::move(h));
  }
  net::TandemNetwork net(sim, std::move(hops));
  FlowId tagged = net.add_flow(0.25 * C, len);
  FlowId cross1 = net.add_flow(0.35 * C, len);
  FlowId cross2 = net.add_flow(0.40 * C, len);

  std::vector<qos::HopGuarantee> hg;
  for (int i = 0; i < hops_n; ++i)
    hg.push_back(qos::sfq_fc_hop({C, delta}, 2.0 * len, len,
                                 i + 1 < hops_n ? prop : 0.0));
  const auto g = qos::compose(hg);

  std::vector<Time> eat1;
  Time worst = -kTimeInfinity;
  net.set_delivery([&](const Packet& p, Time t) {
    if (p.flow == tagged) worst = std::max(worst, t - eat1[p.seq - 1]);
  });
  qos::EatTracker eat;
  traffic::PoissonSource tag(
      sim, tagged,
      [&](Packet p) {
        eat1.push_back(eat.on_arrival(sim.now(), p.length_bits, 0.25 * C));
        net.inject(std::move(p));
      },
      0.22 * C, len, 91);
  tag.run(0.0, 10.0);

  auto emit = [&](Packet p) { net.inject(std::move(p)); };
  traffic::CbrSource c1(sim, cross1, emit, 0.7 * C, len);
  traffic::OnOffSource c2(sim, cross2, emit, 0.8 * C, len, 0.02, 0.03, 92);
  c1.run(0.0, 10.0);
  c2.run(0.0, 10.0);

  sim.run_until(10.0);
  sim.run();
  EXPECT_GT(eat1.size(), 500u);
  EXPECT_LE(worst, g.theta + 1e-9);
}

// Residual-capacity fairness: behind a leaky-bucket-shaped priority class,
// two SFQ flows share the FC(C - rho, sigma) residual server fairly (§2.3's
// construction).
TEST(Integration, ResidualServerFairnessBehindShapedPriority) {
  const double C = 1e6, rho = 4e5, sigma = 2e4, len = 1000.0;
  sim::Simulator sim;
  SfqScheduler low;
  FlowId a = low.add_flow(1.0, len);
  FlowId b = low.add_flow(1.0, len);
  net::PriorityServer server(sim, low, std::make_unique<net::ConstantRate>(C));
  stats::ServiceRecorder rec;
  server.set_low_recorder(&rec);

  // Priority class: bursty on-off through a (sigma, rho) bucket.
  traffic::LeakyBucketShaper shaper(
      sim, sigma, rho, [&](Packet p) { server.inject_high(std::move(p)); });
  traffic::OnOffSource hp(sim, 0,
                          [&](Packet p) { shaper.inject(std::move(p)); },
                          3.0 * rho, len, 0.02, 0.02, 71);
  hp.run(0.0, 15.0);

  auto emit = [&](Packet p) { server.inject_low(std::move(p)); };
  traffic::CbrSource sa(sim, a, emit, C, len);
  traffic::CbrSource sb(sim, b, emit, C, len);
  sa.run(0.0, 15.0);
  sb.run(0.0, 15.0);
  sim.run_until(15.0);
  rec.finish(15.0);

  // Theorem 1 on the residual server.
  const double h = stats::empirical_fairness(rec, a, 1.0, b, 1.0);
  EXPECT_LE(h, 2.0 * len + 1e-6);  // l/1 + l/1 in weight units
  // And the residual throughput is about C - rho.
  const double got = (rec.served_bits(a) + rec.served_bits(b)) / 15.0;
  EXPECT_NEAR(got, C - rho, 0.08 * C);
}

// Two TCP flows under SFQ on one bottleneck converge to an even split even
// when one starts much later (no WFQ-style lockout).
TEST(Integration, TcpFlowsConvergeUnderSfq) {
  const double C = 1e6;
  sim::Simulator sim;
  SfqScheduler sched;
  FlowId f1 = sched.add_flow(1.0, 1600.0);
  FlowId f2 = sched.add_flow(1.0, 1600.0);
  net::ScheduledServer link(sim, sched,
                            std::make_unique<net::ConstantRate>(C));
  stats::ServiceRecorder rec;
  link.set_recorder(&rec);

  traffic::TcpRenoSource::Params p;
  p.packet_bits = 1600.0;
  p.max_window = 128.0;

  std::unique_ptr<traffic::TcpRenoSource> s1, s2;
  traffic::TcpRenoSink k1(
      [&](uint64_t cum) { sim.after(0.005, [&, cum] { s1->on_ack(cum); }); });
  traffic::TcpRenoSink k2(
      [&](uint64_t cum) { sim.after(0.005, [&, cum] { s2->on_ack(cum); }); });
  link.set_departure([&](const Packet& q, Time) {
    if (q.flow == f1) k1.on_segment(q);
    else k2.on_segment(q);
  });
  s1 = std::make_unique<traffic::TcpRenoSource>(
      sim, f1, p, [&](Packet q) { link.inject(std::move(q)); });
  s2 = std::make_unique<traffic::TcpRenoSource>(
      sim, f2, p, [&](Packet q) { link.inject(std::move(q)); });
  s1->start(0.0);
  s2->start(2.0);

  sim.run_until(10.0);
  rec.finish(10.0);
  const double w1 = rec.served_bits(f1, 3.0, 10.0);
  const double w2 = rec.served_bits(f2, 3.0, 10.0);
  EXPECT_GT(w2, 0.6 * w1);
  EXPECT_LT(w2, 1.67 * w1);
}

// PacketSink end-to-end accounting.
TEST(Integration, SinkCountsAndDelays) {
  sim::Simulator sim;
  SfqScheduler sched;
  FlowId f = sched.add_flow(100.0, 10.0);
  net::ScheduledServer link(sim, sched,
                            std::make_unique<net::ConstantRate>(100.0));
  traffic::PacketSink sink(/*series_bucket=*/0.5);
  link.set_departure([&](const Packet& p, Time t) { sink.deliver(p, t); });
  traffic::CbrSource src(
      sim, f,
      [&](Packet p) {
        p.source_departure = sim.now();
        link.inject(std::move(p));
      },
      100.0, 10.0);
  src.run(0.0, 2.0);
  sim.run();

  EXPECT_EQ(sink.packets(f), 20u);
  EXPECT_DOUBLE_EQ(sink.bits(f), 200.0);
  // Each packet takes exactly its transmission time (no queueing).
  EXPECT_NEAR(sink.delays().mean(f), 0.1, 1e-9);
  // Deliveries land at 0.1 .. 2.0; use a horizon past the last one.
  const auto series = sink.series().cumulative(f, 2.5);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.back(), 20.0);
}

}  // namespace
}  // namespace sfq
