// Chaos harness (src/chaos/, docs/CHAOS.md): scenario generation is a pure
// function of the seed, generated scenarios round-trip through the config
// parser, a clean seed block passes every differential check (sim and rt),
// the greedy shrinker strips everything a failure does not depend on, and
// the injected SFQ tag bug (the end-to-end self test) is detected by the
// invariant oracle and shrunk to a near-minimal repro. Also pins the H-SFQ
// churn + pushout + fault-plan combination the generator reaches only
// probabilistically.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "chaos/differential.h"
#include "chaos/harness.h"
#include "chaos/scenario_generator.h"
#include "chaos/shrinker.h"
#include "config/experiment.h"
#include "core/sfq_scheduler.h"

namespace sfq::chaos {
namespace {

config::ExperimentSpec parse_str(const std::string& text) {
  std::istringstream in(text);
  return config::ExperimentSpec::parse(in);
}

// The self-test bug must never leak into other tests, even on ASSERT exits.
struct TagBugGuard {
  TagBugGuard() { SfqScheduler::set_tag_bug_for_test(true); }
  ~TagBugGuard() { SfqScheduler::set_tag_bug_for_test(false); }
};

TEST(ScenarioGenerator, PureFunctionOfSeed) {
  // Two independent generator instances agree byte-for-byte on every seed:
  // a repro is fully identified by (binary, seed).
  ScenarioGenerator a, b;
  for (uint64_t seed = 1; seed <= 200; ++seed)
    ASSERT_EQ(a.generate(seed).serialize(), b.generate(seed).serialize())
        << "seed " << seed;
}

TEST(ScenarioGenerator, RtScenariosStayInTheReplayableSubset) {
  GeneratorOptions opts;
  opts.rt_compatible = true;
  ScenarioGenerator gen(opts);
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const config::ExperimentSpec spec = gen.generate(seed);
    ASSERT_EQ(spec.hops.size(), 1u) << "seed " << seed;
    EXPECT_FALSE(spec.has_faults()) << "seed " << seed;
    EXPECT_EQ(spec.hops.front().delta, 0.0) << "seed " << seed;
    for (const config::FlowSpec& f : spec.flows)
      EXPECT_EQ(f.kind, "greedy") << "seed " << seed;
  }
}

TEST(ScenarioGenerator, SerializeParseRoundTrip) {
  // Canonical form is a fixed point: parse(serialize(spec)) re-serializes
  // identically, so every emitted repro is loadable and faithful.
  for (const bool rt : {false, true}) {
    GeneratorOptions opts;
    opts.rt_compatible = rt;
    ScenarioGenerator gen(opts);
    for (uint64_t seed = 1; seed <= 150; ++seed) {
      const std::string text = gen.generate(seed).serialize();
      ASSERT_EQ(parse_str(text).serialize(), text)
          << "seed " << seed << (rt ? " (rt)" : "") << "\n" << text;
    }
  }
}

TEST(ChaosHarness, CleanSeedBlockPasses) {
  HarnessOptions opts;
  opts.sim_seeds = 32;
  opts.rt_seeds = 2;
  opts.rt_fault_seeds = 2;
  opts.rt_packets = 400;
  const ChaosReport report = run_chaos(opts);
  EXPECT_EQ(report.sim_seeds_run, 32u);
  EXPECT_EQ(report.rt_seeds_run, 2u);
  EXPECT_EQ(report.rt_fault_seeds_run, 2u);
  for (const ChaosFailure& f : report.failures)
    ADD_FAILURE() << (f.rt_faults ? "rt-fault seed " : f.rt ? "rt seed "
                                                            : "seed ")
                  << f.seed << " [" << f.kind << "] " << f.detail;
}

// Heap-vs-wheel core differential (this PR's tentpole oracle): generated
// scenarios re-run with the SFQ-W timestamp wheel (quantum = l_max / C) must
// stay within the derived per-flow slack of the exact heap core across the
// whole seed block — the analytic 2*quantum fairness widening, checked
// empirically over the corpus.
TEST(ChaosHarness, WheelSeedBlockPassesTheCoreDifferential) {
  HarnessOptions opts;
  opts.sim_seeds = 0;
  opts.wheel_seeds = 24;
  const ChaosReport report = run_chaos(opts);
  EXPECT_EQ(report.wheel_seeds_run, 24u);
  EXPECT_EQ(report.sim_seeds_run, 0u);
  for (const ChaosFailure& f : report.failures)
    ADD_FAILURE() << "wheel seed " << f.seed << " [" << f.kind << "] "
                  << f.detail;
}

TEST(ChaosHarness, WheelReplayMatchesTheSweep) {
  // replay_seed with wheel=true runs the same check the sweep ran: a clean
  // seed replays clean, and the failure record carries the wheel marker.
  HarnessOptions opts;
  const ChaosFailure f =
      replay_seed(/*seed=*/7, /*rt=*/false, opts, /*rt_faults=*/false,
                  /*rt_kill=*/false, /*wheel=*/true);
  EXPECT_TRUE(f.wheel);
  EXPECT_EQ(f.kind, "") << f.detail;
}

TEST(ScenarioGenerator, RtFaultPlansArePureAndNonEmpty) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const rt::RtFaultPlan a = generate_rt_faults(seed, 0.05);
    const rt::RtFaultPlan b = generate_rt_faults(seed, 0.05);
    ASSERT_FALSE(a.empty()) << "seed " << seed;
    ASSERT_GE(a.pauses.size(), 1u) << "seed " << seed;
    ASSERT_EQ(a.pauses.size(), b.pauses.size());
    ASSERT_EQ(a.jumps.size(), b.jumps.size());
    ASSERT_EQ(a.skews.size(), b.skews.size());
    for (std::size_t i = 0; i < a.pauses.size(); ++i) {
      EXPECT_EQ(a.pauses[i].at, b.pauses[i].at);
      EXPECT_EQ(a.pauses[i].duration, b.pauses[i].duration);
    }
    for (std::size_t i = 0; i < a.jumps.size(); ++i) {
      EXPECT_EQ(a.jumps[i].at, b.jumps[i].at);
      EXPECT_EQ(a.jumps[i].delta, b.jumps[i].delta);
    }
    for (std::size_t i = 0; i < a.skews.size(); ++i) {
      EXPECT_EQ(a.skews[i].from, b.skews[i].from);
      EXPECT_EQ(a.skews[i].until, b.skews[i].until);
      EXPECT_EQ(a.skews[i].factor, b.skews[i].factor);
    }
  }
}

TEST(Shrinker, StripsEverythingTheFailureDoesNotDependOn) {
  config::ExperimentSpec spec = parse_str(
      "scheduler HSFQ\n"
      "link rate=4Mbps buffer=16 policy=pushout\n"
      "duration 1s\n"
      "class name=gold weight=2Mbps\n"
      "class name=silver weight=1Mbps parent=gold\n"
      "fault link down=0.2s up=0.4s\n"
      "fault loss p=0.05 from=0.1s until=0.9s seed=5\n"
      "flow name=marker kind=cbr rate=500Kbps packet=7776b weight=500Kbps"
      " class=gold\n"
      "flow name=noise1 kind=greedy packet=1500B weight=1Mbps class=silver"
      " leave=0.5s join=0.7s\n"
      "flow name=noise2 kind=poisson rate=800Kbps packet=1000B"
      " weight=800Kbps\n");
  // A synthetic failure that depends only on the marker flow being present;
  // everything else is noise the shrinker must discard.
  const auto fails = [](const config::ExperimentSpec& s) {
    for (const config::FlowSpec& f : s.flows)
      if (f.packet == 7776.0) return true;
    return false;
  };
  ASSERT_TRUE(fails(spec));
  const ShrinkResult r = shrink(spec, fails);
  ASSERT_TRUE(fails(r.spec));
  EXPECT_EQ(r.spec.flows.size(), 1u);
  EXPECT_TRUE(r.spec.faults.link.empty());
  EXPECT_TRUE(r.spec.faults.loss.empty());
  EXPECT_TRUE(r.spec.classes.empty());
  EXPECT_LT(r.spec.duration, spec.duration);
  EXPECT_GT(r.edits_accepted, 0u);
  EXPECT_GE(r.edits_tried, r.edits_accepted);
  // The minimized spec is still a valid, loadable repro.
  EXPECT_EQ(parse_str(r.spec.serialize()).serialize(), r.spec.serialize());
}

// End-to-end self test (ISSUE acceptance): with the known tag-arithmetic bug
// enabled — start tag computed without the max against the previous finish
// tag, eq. (4) broken — a small sweep must catch it via the invariant oracle
// (with flow/seq/vtime/seed context in the message, the PR's observability
// satellite) and shrink the scenario to <= 3 flows and <= 1 fault.
TEST(ChaosHarness, InjectedTagBugIsDetectedAndShrunk) {
  TagBugGuard bug;
  HarnessOptions opts;
  opts.sim_seeds = 32;
  const ChaosReport report = run_chaos(opts);
  ASSERT_FALSE(report.failures.empty())
      << "injected tag bug escaped a 32-seed sweep";
  const ChaosFailure* hit = nullptr;
  for (const ChaosFailure& f : report.failures)
    if (f.kind == "invariant" &&
        f.detail.find("start tag regressed") != std::string::npos) {
      hit = &f;
      break;
    }
  ASSERT_NE(hit, nullptr) << "no invariant-kind failure among "
                          << report.failures.size();
  // Failure context names the flow, packet and scenario seed.
  EXPECT_NE(hit->detail.find("flow"), std::string::npos) << hit->detail;
  EXPECT_NE(hit->detail.find("seq"), std::string::npos) << hit->detail;
  EXPECT_NE(hit->detail.find("seed"), std::string::npos) << hit->detail;
  // Shrunk within the acceptance budget, and the minimized repro still fails.
  EXPECT_LE(hit->minimized.flows.size(), 3u);
  EXPECT_LE(hit->minimized.faults.link.size() + hit->minimized.faults.loss.size(),
            1u);
  EXPECT_FALSE(check_sim(hit->minimized, hit->seed).ok);
}

// Churn + pushout under H-SFQ with an active fault plan (ISSUE satellite):
// a link-sharing tree under overload with an outage, a brown-out, random
// loss, a leave/rejoin flow and a leave-forever flow. The run must stay
// invariant-clean, every stress ingredient must actually fire (pushout,
// churn flush, fault loss), and the whole spec must pass the sim
// differential gate.
TEST(ChaosHarness, HsfqChurnPushoutUnderActiveFaultPlan) {
  config::ExperimentSpec spec = parse_str(
      "scheduler HSFQ\n"
      "link rate=2Mbps buffer=16 policy=pushout\n"
      "duration 2s\n"
      "trace invariants=on\n"
      "class name=gold weight=1.2Mbps\n"
      "class name=gold_sub weight=400Kbps parent=gold\n"
      "class name=silver weight=600Kbps\n"
      "fault link down=0.6s up=0.9s\n"
      "fault link degrade=0.3 from=1.2s until=1.5s\n"
      "fault loss p=0.05 from=0.2s until=1.8s seed=9\n"
      "flow name=a kind=greedy packet=1500B weight=600Kbps class=gold\n"
      "flow name=b kind=cbr rate=500Kbps packet=1000B weight=500Kbps"
      " class=silver leave=0.8s join=1.1s\n"
      "flow name=c kind=poisson rate=400Kbps packet=800B weight=400Kbps"
      " class=gold_sub\n"
      "flow name=d kind=onoff rate=600Kbps packet=500B weight=300Kbps"
      " leave=1.4s\n");
  ASSERT_TRUE(spec.has_faults());

  const config::ExperimentResult res = config::run_experiment(spec);
  EXPECT_EQ(res.invariant_violations, 0u) << res.invariant_report;
  uint64_t pushout = 0, removed = 0, loss = 0;
  for (const auto& [cause, n] : res.drop_causes) {
    if (cause == "pushout") pushout = n;
    if (cause == "flow_removed") removed = n;
    if (cause == "fault_loss") loss = n;
  }
  EXPECT_GT(pushout, 0u) << "pushout policy never fired";
  EXPECT_GT(removed, 0u) << "churn never flushed a backlog";
  EXPECT_GT(loss, 0u) << "loss fault never fired";
  uint64_t delivered = 0;
  for (const config::FlowResult& f : res.flows) delivered += f.packets_delivered;
  EXPECT_GT(delivered, 0u);

  const CheckResult check = check_sim(spec, /*seed=*/0);
  EXPECT_TRUE(check.ok) << check.kind << ": " << check.detail;
}

}  // namespace
}  // namespace sfq::chaos
