#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "harness.h"
#include "net/rate_profile.h"
#include "sched/drr_scheduler.h"
#include "sched/wrr_scheduler.h"
#include "traffic/trace_io.h"

namespace sfq {
namespace {

Packet mk(FlowId f, uint64_t seq, double bits) {
  Packet p;
  p.flow = f;
  p.seq = seq;
  p.length_bits = bits;
  return p;
}

// --- WRR ---------------------------------------------------------------

TEST(Wrr, PacketsPerRoundFollowWeights) {
  WrrScheduler s;
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(3.0);
  FlowId c = s.add_flow(2.0);
  EXPECT_EQ(s.packets_per_round(a), 1u);
  EXPECT_EQ(s.packets_per_round(b), 3u);
  EXPECT_EQ(s.packets_per_round(c), 2u);
}

TEST(Wrr, RoundPatternForUniformPackets) {
  WrrScheduler s;
  FlowId a = s.add_flow(1.0);
  FlowId b = s.add_flow(2.0);
  for (int j = 1; j <= 3; ++j) {
    s.enqueue(mk(a, j, 10.0), 0.0);
    s.enqueue(mk(b, j, 10.0), 0.0);
  }
  std::vector<FlowId> order;
  while (auto p = s.dequeue(0.0)) order.push_back(p->flow);
  // Round 1: a x1, b x2. Round 2: a x1, b x1 (b drained). Round 3: a x1.
  EXPECT_EQ(order, (std::vector<FlowId>{a, b, b, a, b, a}));
}

TEST(Wrr, UniformPacketsShareByWeight) {
  WrrScheduler s;
  const double w0 = 100.0, w1 = 300.0, len = 50.0;
  // Oversubscribe so the shares reflect scheduling, and measure inside the
  // overloaded window (the harness drains queues afterwards).
  auto r = test::run_workload(
      s, std::make_unique<net::ConstantRate>(1000.0),
      {{w0, len, test::Kind::kGreedy, 5.0 * w0},
       {w1, len, test::Kind::kGreedy, 5.0 * w1}},
      10.0);
  EXPECT_NEAR(r->recorder.served_bits(r->ids[1], 0.0, 10.0) /
                  r->recorder.served_bits(r->ids[0], 0.0, 10.0),
              3.0, 0.1);
}

// The §1.2 motivation for DRR: with variable packet sizes, WRR's byte shares
// drift toward flows with big packets; DRR's deficit counters keep the byte
// shares on the weights.
TEST(Wrr, VariableSizesSkewSharesButDrrDoesNot) {
  const double w = 100.0;
  const double small = 40.0, big = 120.0;
  auto run = [&](Scheduler& s) {
    return test::run_workload(
        s, std::make_unique<net::ConstantRate>(200.0),
        {{w, small, test::Kind::kGreedy}, {w, big, test::Kind::kGreedy}},
        10.0);
  };
  WrrScheduler wrr;
  auto rw = run(wrr);
  const double wrr_ratio = rw->recorder.served_bits(rw->ids[1], 0.0, 10.0) /
                           rw->recorder.served_bits(rw->ids[0], 0.0, 10.0);
  // Equal weights, equal packet counts per round => 3x the bytes for the
  // big-packet flow.
  EXPECT_NEAR(wrr_ratio, big / small, 0.4);

  DrrScheduler drr(/*quantum_per_weight=*/1.2);  // quantum 120 bits
  auto rd = run(drr);
  const double drr_ratio = rd->recorder.served_bits(rd->ids[1], 0.0, 10.0) /
                           rd->recorder.served_bits(rd->ids[0], 0.0, 10.0);
  EXPECT_NEAR(drr_ratio, 1.0, 0.1);
}

TEST(Wrr, UnknownFlowIsCountedDrop) {
  WrrScheduler s;
  s.enqueue(mk(9, 1, 1.0), 0.0);  // never registered: dropped, not thrown
  EXPECT_EQ(s.unknown_flow_drops(), 1u);
  EXPECT_TRUE(s.empty());
}

// --- Trace I/O -----------------------------------------------------------

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return std::string(::testing::TempDir()) + name;
  }
};

TEST_F(TraceIoTest, RoundTrip) {
  std::vector<traffic::TraceSource::Item> items = {
      {0.0, bytes(40)}, {0.5, bytes(1500)}, {0.5, bytes(200)}, {2.25, bytes(64)}};
  const std::string file = path("trace_roundtrip.csv");
  traffic::save_trace_csv(items, file);
  const auto back = traffic::load_trace_csv(file);
  ASSERT_EQ(back.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].t, items[i].t);
    EXPECT_DOUBLE_EQ(back[i].bits, items[i].bits);
  }
}

TEST_F(TraceIoTest, SkipsCommentsAndBlankLines) {
  const std::string file = path("trace_comments.csv");
  std::ofstream out(file);
  out << "# header\n\n0.5,100\n  \n1.0,50\n";
  out.close();
  const auto items = traffic::load_trace_csv(file);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_DOUBLE_EQ(items[0].bits, bytes(100));
}

TEST_F(TraceIoTest, RejectsMalformedAndMisordered) {
  const std::string file = path("trace_bad.csv");
  {
    std::ofstream out(file);
    out << "1.0,100\n0.5,100\n";
  }
  EXPECT_THROW(traffic::load_trace_csv(file), std::runtime_error);
  {
    std::ofstream out(file);
    out << "not,a,number\n";
  }
  EXPECT_THROW(traffic::load_trace_csv(file), std::runtime_error);
  {
    std::ofstream out(file);
    out << "1.0,-5\n";
  }
  EXPECT_THROW(traffic::load_trace_csv(file), std::runtime_error);
  EXPECT_THROW(traffic::load_trace_csv(path("missing_file.csv")),
               std::runtime_error);
}

TEST_F(TraceIoTest, TransmissionLogContainsAllRows) {
  stats::ServiceRecorder rec;
  rec.on_arrival(0, 0.0);
  rec.on_service(0, 100.0, 0.0, 0.0, 1.0);
  rec.on_arrival(1, 0.5);
  rec.on_service(1, 200.0, 0.5, 1.0, 3.0);
  rec.finish(3.0);
  const std::string file = path("tx_log.csv");
  traffic::save_transmissions_csv(rec, file);

  std::ifstream in(file);
  std::string line;
  int rows = 0;
  while (std::getline(in, line))
    if (!line.empty() && line[0] != '#') ++rows;
  EXPECT_EQ(rows, 2);
}

TEST_F(TraceIoTest, TraceDrivesSimulation) {
  const std::string file = path("trace_drive.csv");
  {
    std::ofstream out(file);
    out << "0.0,125\n0.1,125\n0.35,125\n";
  }
  const auto items = traffic::load_trace_csv(file);
  sim::Simulator sim;
  std::vector<Time> arrivals;
  traffic::TraceSource src(sim, 0, [&](Packet p) {
    arrivals.push_back(sim.now());
    EXPECT_DOUBLE_EQ(p.length_bits, 1000.0);
  }, items);
  src.run(0.0, 1.0);
  sim.run();
  EXPECT_EQ(arrivals, (std::vector<Time>{0.0, 0.1, 0.35}));
}

}  // namespace
}  // namespace sfq
